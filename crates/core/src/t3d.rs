//! Temporal vectorization of three-dimensional stencils.
//!
//! Same outer-loop scheme as [`crate::t2d`], one dimension deeper: the
//! outermost space loop `x` carries the `VL` time levels, and the
//! wavefront ring stores whole `(y, z)` **planes** of input-vector packs.
//! The per-point steady-state work is identical to the 2-D case (one
//! vectorized stencil application + rotate/blend); only the buffer
//! geometry changes — which is precisely the paper's point that the
//! reorganization cost does not grow with dimensionality.
//!
//! Gauss-Seidel adds the previous output plane (newest `x-1` operand), the
//! current output plane being filled (newest `y-1` operand) and the
//! previous output register (newest `z-1` operand).

use crate::kernels::{Kernel3d, Nbhd3};
use tempora_grid::Grid3;
use tempora_simd::{Pack, Scalar};

/// Scratch state for one 3-D sweep configuration, reusable across tiles.
pub struct Scratch3d<T: Scalar, const VL: usize> {
    /// `head[k]`: level-`k` slabs `x ∈ 0..=(VL-k)·s` (slab 0 = boundary),
    /// each slab `(ny+2) × (nz+2)` flat.
    pub(crate) head: Vec<Vec<T>>,
    /// `tail[i]`: level-`i` slabs re-based at `x_max + (VL-1-i)·s`,
    /// `(i+1)·s + 1` slabs.
    pub(crate) tail: Vec<Vec<T>>,
    /// Wavefront ring: `s + 2` planes of `(ny+2) × (nz+2)` packs.
    pub(crate) ring: Vec<Vec<Pack<T, VL>>>,
    /// Previous / current output planes (Gauss-Seidel only).
    pub(crate) o_prev: Vec<Pack<T, VL>>,
    pub(crate) o_cur: Vec<Pack<T, VL>>,
    /// Two old-plane copies for the in-place scalar step.
    pub(crate) plane_a: Vec<T>,
    pub(crate) plane_b: Vec<T>,
    pub(crate) s: usize,
    pub(crate) ny: usize,
    pub(crate) nz: usize,
}

impl<T: Scalar, const VL: usize> Scratch3d<T, VL> {
    /// Allocate scratch for stride `s` and inner extents `ny × nz`.
    pub fn new(s: usize, ny: usize, nz: usize) -> Self {
        let wp = (ny + 2) * (nz + 2);
        Scratch3d {
            head: (0..VL)
                .map(|k| vec![T::ZERO; ((VL - k) * s + 1) * wp])
                .collect(),
            tail: (0..VL)
                .map(|i| vec![T::ZERO; ((i + 1) * s + 1) * wp])
                .collect(),
            ring: (0..s + 2).map(|_| vec![Pack::splat(T::ZERO); wp]).collect(),
            o_prev: vec![Pack::splat(T::ZERO); wp],
            o_cur: vec![Pack::splat(T::ZERO); wp],
            plane_a: vec![T::ZERO; wp],
            plane_b: vec![T::ZERO; wp],
            s,
            ny,
            nz,
        }
    }
}

/// One in-place scalar time step (degenerate tiles, step remainders).
/// Bit-identical to the double-buffered reference.
pub fn scalar_step_inplace<T: Scalar, K: Kernel3d<T>>(
    g: &mut Grid3<T>,
    kern: &K,
    plane_a: &mut [T],
    plane_b: &mut [T],
) {
    let (nx, ny, nz) = (g.nx(), g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    let wz = nz + 2;
    let a = g.data_mut();
    // Local scratch pitch: wz per row, (ny+2) rows.
    let lp = |y: usize, z: usize| y * wz + z;
    let (mut pa, mut pb) = (plane_a, plane_b);
    // pa = old slab x-1, pb = old slab x.
    for y in 0..ny + 2 {
        for z in 0..nz + 2 {
            pa[lp(y, z)] = a[y * p + z]; // slab 0 (boundary slab: constant)
        }
    }
    for x in 1..=nx {
        for y in 0..ny + 2 {
            for z in 0..nz + 2 {
                pb[lp(y, z)] = a[x * pl + y * p + z];
            }
        }
        for y in 1..=ny {
            for z in 1..=nz {
                let nb = Nbhd3 {
                    xm: pa[lp(y, z)],
                    ym: pb[lp(y - 1, z)],
                    zm: pb[lp(y, z - 1)],
                    m: pb[lp(y, z)],
                    zp: pb[lp(y, z + 1)],
                    yp: pb[lp(y + 1, z)],
                    xp: a[(x + 1) * pl + y * p + z],
                    new_xm: a[(x - 1) * pl + y * p + z],
                    new_ym: a[x * pl + (y - 1) * p + z],
                    new_zm: a[x * pl + y * p + z - 1],
                };
                a[x * pl + y * p + z] = kern.scalar(nb);
            }
        }
        core::mem::swap(&mut pa, &mut pb);
    }
}

/// Advance the grid by `VL` time steps with the temporal-vectorized
/// schedule (in place, single array).
///
/// The tile is the composition of the three phases exposed below —
/// [`tile_prologue`], [`tile_steady`], [`tile_epilogue`] — so that
/// arch-specialized steady states (see `t3d_avx2`) can swap the middle
/// phase while sharing the exact boundary machinery.
pub fn tile<T: Scalar, const VL: usize, K: Kernel3d<T>>(
    g: &mut Grid3<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch3d<T, VL>,
) {
    if tile_fallback_if_degenerate::<T, VL, K>(g, kern, s, sc) {
        return;
    }
    let x_max = tile_prologue::<T, VL, K>(g, kern, s, sc);
    tile_steady::<T, VL, K>(g, kern, s, sc, x_max);
    tile_epilogue::<T, VL, K>(g, kern, s, sc, x_max);
}

/// Shared degenerate-tile guard: when the outer extent cannot host the
/// vector schedule (`nx < VL·s`), run the `VL` steps with the scalar
/// schedule instead (same results) and report `true`.
pub fn tile_fallback_if_degenerate<T: Scalar, const VL: usize, K: Kernel3d<T>>(
    g: &mut Grid3<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch3d<T, VL>,
) -> bool {
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    assert_eq!(g.halo(), 1, "temporal engines use halo width 1");
    assert_eq!(
        (sc.s, sc.ny, sc.nz),
        (s, g.ny(), g.nz()),
        "scratch shape mismatch"
    );
    if g.nx() >= VL * s {
        return false;
    }
    for _ in 0..VL {
        let (mut pa, mut pb) = (
            core::mem::take(&mut sc.plane_a),
            core::mem::take(&mut sc.plane_b),
        );
        scalar_step_inplace(g, kern, &mut pa, &mut pb);
        sc.plane_a = pa;
        sc.plane_b = pb;
    }
    true
}

/// Phase 1 of a 3-D temporal tile: scalar head slabs for levels `1..VL`,
/// the initial wavefront ring `W(0) ..= W(s)`, and (for Gauss-Seidel) the
/// initial output plane `O(0, ·, ·)` in `sc.o_prev` (with `sc.o_cur`
/// halo-initialized). Returns the steady-state bound `x_max`.
pub fn tile_prologue<T: Scalar, const VL: usize, K: Kernel3d<T>>(
    g: &mut Grid3<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch3d<T, VL>,
) -> usize {
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    assert_eq!(g.halo(), 1, "temporal engines use halo width 1");
    assert_eq!(
        (sc.s, sc.ny, sc.nz),
        (s, g.ny(), g.nz()),
        "scratch shape mismatch"
    );
    let (nx, ny, nz) = (g.nx(), g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    assert!(
        nx >= VL * s,
        "degenerate tile (nx={nx} < VL*s={}): call tile_fallback_if_degenerate first",
        VL * s
    );
    let bc = g.boundary().value();
    let x_max = nx + 1 - VL * s;
    let wz = nz + 2;
    let wp = (ny + 2) * wz;
    let rlen = s + 2;
    let lp = |y: usize, z: usize| y * wz + z;
    let a = g.data_mut();

    // ------------------------------------------------------------------
    // Prologue: head[k] = level k over slabs 1..=(VL-k)·s.
    // ------------------------------------------------------------------
    for k in 1..VL {
        let hi = (VL - k) * s;
        let (lo_planes, hi_planes) = sc.head.split_at_mut(k);
        let plane = &mut hi_planes[0];
        for v in plane[..wp].iter_mut() {
            *v = bc; // boundary slab 0
        }
        for x in 1..=hi {
            let sb = x * wp;
            // Halo shell of this slab.
            for z in 0..wz {
                plane[sb + lp(0, z)] = bc;
                plane[sb + lp(ny + 1, z)] = bc;
            }
            for y in 1..=ny {
                plane[sb + lp(y, 0)] = bc;
                plane[sb + lp(y, nz + 1)] = bc;
            }
            for y in 1..=ny {
                for z in 1..=nz {
                    let old = |dx: i32, dy: i32, dz: i32| -> T {
                        let (xx, yy, zz) = (
                            (x as i32 + dx) as usize,
                            (y as i32 + dy) as usize,
                            (z as i32 + dz) as usize,
                        );
                        if k == 1 {
                            a[xx * pl + yy * p + zz]
                        } else {
                            lo_planes[k - 1][xx * wp + lp(yy, zz)]
                        }
                    };
                    let nb = Nbhd3 {
                        xm: old(-1, 0, 0),
                        ym: old(0, -1, 0),
                        zm: old(0, 0, -1),
                        m: old(0, 0, 0),
                        zp: old(0, 0, 1),
                        yp: old(0, 1, 0),
                        xp: old(1, 0, 0),
                        new_xm: plane[(x - 1) * wp + lp(y, z)],
                        new_ym: plane[sb + lp(y - 1, z)],
                        new_zm: plane[sb + lp(y, z - 1)],
                    };
                    plane[sb + lp(y, z)] = kern.scalar(nb);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Initial wavefront ring W(0) ..= W(s); halo packs everywhere.
    // ------------------------------------------------------------------
    for plane in sc.ring.iter_mut() {
        for slot in plane.iter_mut() {
            *slot = Pack::splat(bc);
        }
    }
    for j in 0..=s {
        let head = &sc.head;
        let dst = &mut sc.ring[j % rlen];
        for y in 1..=ny {
            for z in 1..=nz {
                dst[lp(y, z)] = Pack::from_fn(|i| {
                    let x = j + (VL - 1 - i) * s;
                    if i == 0 {
                        a[x * pl + y * p + z]
                    } else if x == 0 {
                        bc
                    } else {
                        head[i][x * wp + lp(y, z)]
                    }
                });
            }
        }
    }

    // Gauss-Seidel: O(0, ·, ·) from the head planes.
    if K::IS_GS {
        for slot in sc.o_prev.iter_mut() {
            *slot = Pack::splat(bc);
        }
        for y in 1..=ny {
            for z in 1..=nz {
                sc.o_prev[lp(y, z)] = Pack::from_fn(|i| {
                    let x = (VL - 1 - i) * s;
                    if i == VL - 1 {
                        bc
                    } else {
                        sc.head[i + 1][x * wp + lp(y, z)]
                    }
                });
            }
        }
        for slot in sc.o_cur.iter_mut() {
            *slot = Pack::splat(bc);
        }
    }
    x_max
}

/// Phase 2 of a 3-D temporal tile (portable): one vectorized pass per
/// outer slab `x ∈ 1..=x_max`. `x_max` must come from [`tile_prologue`].
pub fn tile_steady<T: Scalar, const VL: usize, K: Kernel3d<T>>(
    g: &mut Grid3<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch3d<T, VL>,
    x_max: usize,
) {
    let (ny, nz) = (g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    let bc = g.boundary().value();
    let wz = nz + 2;
    let rlen = s + 2;
    let lp = |y: usize, z: usize| y * wz + z;
    let a = g.data_mut();
    let zero = Pack::<T, VL>::splat(T::ZERO);
    for x in 1..=x_max {
        let im1 = (x - 1) % rlen;
        let i0 = x % rlen;
        let ip1 = (x + 1) % rlen;
        let ips = (x + s) % rlen;
        let mut wplane = core::mem::take(&mut sc.ring[ips]);
        {
            let rm1 = &sc.ring[im1];
            let r0 = &sc.ring[i0];
            let rp1 = &sc.ring[ip1];
            for y in 1..=ny {
                let mut o_z = Pack::splat(bc); // O(x, y, 0): z-boundary
                for z in 1..=nz {
                    let idx = lp(y, z);
                    let nb = Nbhd3 {
                        xm: rm1[idx],
                        ym: r0[idx - wz],
                        zm: r0[idx - 1],
                        m: r0[idx],
                        zp: r0[idx + 1],
                        yp: r0[idx + wz],
                        xp: rp1[idx],
                        new_xm: if K::IS_GS { sc.o_prev[idx] } else { zero },
                        new_ym: if K::IS_GS { sc.o_cur[idx - wz] } else { zero },
                        new_zm: o_z,
                    };
                    let o = kern.pack(nb);
                    a[x * pl + y * p + z] = o.top();
                    let bottom = a[(x + VL * s) * pl + y * p + z];
                    wplane[idx] = o.shift_up_insert(bottom);
                    if K::IS_GS {
                        sc.o_cur[idx] = o;
                        o_z = o;
                    }
                }
            }
        }
        sc.ring[ips] = wplane;
        if K::IS_GS {
            core::mem::swap(&mut sc.o_prev, &mut sc.o_cur);
            // Refresh the halo packs of the new o_cur (stale interior
            // values are fully overwritten next iteration; halos must
            // stay at the boundary value for the y = 1 reads).
            for z in 0..wz {
                sc.o_cur[lp(0, z)] = Pack::splat(bc);
            }
        }
    }
}

/// Phase 3 of a 3-D temporal tile: drain the surviving wavefront ring into
/// the tail slabs and finish every level scalar-wise up to slab `nx`.
/// `x_max` must match the value [`tile_prologue`] returned, with the ring
/// left behind by the steady state.
pub fn tile_epilogue<T: Scalar, const VL: usize, K: Kernel3d<T>>(
    g: &mut Grid3<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch3d<T, VL>,
    x_max: usize,
) {
    let (nx, ny, nz) = (g.nx(), g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    let bc = g.boundary().value();
    let wz = nz + 2;
    let wp = (ny + 2) * wz;
    let rlen = s + 2;
    let lp = |y: usize, z: usize| y * wz + z;
    let a = g.data_mut();
    for i in 1..VL {
        let base = x_max + (VL - 1 - i) * s;
        let slabs = (i + 1) * s + 1; // rel 0 ..= (i+1)·s, last = halo slab nx+1
        debug_assert_eq!(base + slabs - 1, nx + 1);
        let (lo_planes, hi_planes) = sc.tail.split_at_mut(i);
        let plane = &mut hi_planes[0];
        // Halo prefill: full boundary shell.
        for r in 0..slabs {
            let sb = r * wp;
            for z in 0..wz {
                plane[sb + lp(0, z)] = bc;
                plane[sb + lp(ny + 1, z)] = bc;
            }
            for y in 1..=ny {
                plane[sb + lp(y, 0)] = bc;
                plane[sb + lp(y, nz + 1)] = bc;
            }
        }
        for v in plane[(slabs - 1) * wp..slabs * wp].iter_mut() {
            *v = bc;
        }
        // Drain lane i of the surviving ring planes.
        for j in x_max..=x_max + s {
            let rel = j - x_max;
            let src = &sc.ring[j % rlen];
            for y in 1..=ny {
                for z in 1..=nz {
                    plane[rel * wp + lp(y, z)] = src[lp(y, z)].extract(i);
                }
            }
        }
        // Scalar completion over slabs base+s+1 ..= nx.
        for x in base + s + 1..=nx {
            let rel = x - base;
            let sb = rel * wp;
            for y in 1..=ny {
                for z in 1..=nz {
                    let old = |dx: i32, dy: i32, dz: i32| -> T {
                        let (xx, yy, zz) = (
                            (x as i32 + dx) as usize,
                            (y as i32 + dy) as usize,
                            (z as i32 + dz) as usize,
                        );
                        if i == 1 {
                            a[xx * pl + yy * p + zz]
                        } else {
                            lo_planes[i - 1][(xx - (base + s)) * wp + lp(yy, zz)]
                        }
                    };
                    let nb = Nbhd3 {
                        xm: old(-1, 0, 0),
                        ym: old(0, -1, 0),
                        zm: old(0, 0, -1),
                        m: old(0, 0, 0),
                        zp: old(0, 0, 1),
                        yp: old(0, 1, 0),
                        xp: old(1, 0, 0),
                        new_xm: plane[(rel - 1) * wp + lp(y, z)],
                        new_ym: plane[sb + lp(y - 1, z)],
                        new_zm: plane[sb + lp(y, z - 1)],
                    };
                    plane[sb + lp(y, z)] = kern.scalar(nb);
                }
            }
        }
    }

    // Final level VL over slabs x_max+1 ..= nx.
    {
        let below = &sc.tail[VL - 1]; // based at x_max
        for x in x_max + 1..=nx {
            let rel = x - x_max;
            for y in 1..=ny {
                for z in 1..=nz {
                    let nb = Nbhd3 {
                        xm: below[(rel - 1) * wp + lp(y, z)],
                        ym: below[rel * wp + lp(y - 1, z)],
                        zm: below[rel * wp + lp(y, z - 1)],
                        m: below[rel * wp + lp(y, z)],
                        zp: below[rel * wp + lp(y, z + 1)],
                        yp: below[rel * wp + lp(y + 1, z)],
                        xp: below[(rel + 1) * wp + lp(y, z)],
                        new_xm: a[(x - 1) * pl + y * p + z],
                        new_ym: a[x * pl + (y - 1) * p + z],
                        new_zm: a[x * pl + y * p + z - 1],
                    };
                    a[x * pl + y * p + z] = kern.scalar(nb);
                }
            }
        }
    }
}

/// Run `steps` time steps of a 3-D stencil with the temporal-vectorized
/// schedule, returning the final grid. Bit-identical to the scalar
/// reference sweeps.
pub fn run<T: Scalar, const VL: usize, K: Kernel3d<T>>(
    grid: &Grid3<T>,
    kern: &K,
    steps: usize,
    s: usize,
) -> Grid3<T> {
    assert_eq!(grid.halo(), 1, "temporal engines use halo width 1");
    let mut g = grid.clone();
    let mut sc = Scratch3d::<T, VL>::new(s, g.ny(), g.nz());
    for _ in 0..steps / VL {
        tile::<T, VL, K>(&mut g, kern, s, &mut sc);
    }
    for _ in 0..steps % VL {
        let (mut pa, mut pb) = (
            core::mem::take(&mut sc.plane_a),
            core::mem::take(&mut sc.plane_b),
        );
        scalar_step_inplace(&mut g, kern, &mut pa, &mut pb);
        sc.plane_a = pa;
        sc.plane_b = pb;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{GsKern3d, JacobiKern3d};
    use tempora_grid::{fill_random_3d, Boundary};
    use tempora_stencil::reference;
    use tempora_stencil::{Gs3dCoeffs, Heat3dCoeffs};

    fn grid(nx: usize, ny: usize, nz: usize, seed: u64, b: f64) -> Grid3<f64> {
        let mut g = Grid3::new(nx, ny, nz, 1, Boundary::Dirichlet(b));
        fill_random_3d(&mut g, seed, -1.0, 1.0);
        g
    }

    #[test]
    fn heat3d_matches_reference() {
        let c = Heat3dCoeffs::classic(0.11);
        let kern = JacobiKern3d(c);
        for &(nx, ny, nz) in &[(9usize, 5usize, 6usize), (16, 8, 7), (21, 6, 11)] {
            for steps in [4usize, 8] {
                let g = grid(nx, ny, nz, (nx * ny * nz) as u64, 0.3);
                let ours = run::<f64, 4, _>(&g, &kern, steps, 2);
                let gold = reference::heat3d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} ny={ny} nz={nz} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
                ours.check_canaries().unwrap();
            }
        }
    }

    #[test]
    fn heat3d_remainders_and_fallback() {
        let c = Heat3dCoeffs::classic(0.15);
        let kern = JacobiKern3d(c);
        for steps in [0usize, 1, 3, 5, 7] {
            let g = grid(10, 4, 5, steps as u64, -0.2);
            let ours = run::<f64, 4, _>(&g, &kern, steps, 2);
            let gold = reference::heat3d(&g, c, steps);
            assert!(ours.interior_eq(&gold), "steps={steps}");
        }
        // nx too small for the vector path.
        let g = grid(5, 6, 6, 3, 0.0);
        let ours = run::<f64, 4, _>(&g, &kern, 6, 2);
        let gold = reference::heat3d(&g, c, 6);
        assert!(ours.interior_eq(&gold));
    }

    #[test]
    fn gs3d_matches_reference() {
        let c = Gs3dCoeffs::classic(0.13);
        let kern = GsKern3d(c);
        for &(nx, ny, nz) in &[(9usize, 4usize, 5usize), (17, 7, 6), (24, 9, 8)] {
            for steps in [4usize, 9] {
                let g = grid(nx, ny, nz, (nx + ny + nz + steps) as u64, 0.1);
                let ours = run::<f64, 4, _>(&g, &kern, steps, 2);
                let gold = reference::gs3d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} ny={ny} nz={nz} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn gs3d_asymmetric_coeffs_wider_stride() {
        let c = Gs3dCoeffs::new(0.21, 0.13, 0.08, 0.3, 0.09, 0.11, 0.07);
        let kern = GsKern3d(c);
        let g = grid(26, 6, 7, 8, 1.5);
        let ours = run::<f64, 4, _>(&g, &kern, 8, 3);
        let gold = reference::gs3d(&g, c, 8);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }
}
