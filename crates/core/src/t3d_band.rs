//! Skewed-band (parallelogram) execution of the 3-D Gauss-Seidel engine —
//! [`crate::t1d_band`] with whole `(y, z)` planes as the unit of the
//! outer dimension.

use crate::kernels::{Kernel3d, Nbhd3};
use tempora_grid::Grid3;
use tempora_simd::Pack;

/// Scalar in-place 3-D Gauss-Seidel update of one slab `x`.
#[inline]
fn gs_slab<K: Kernel3d<f64>>(
    a: &mut [f64],
    x: usize,
    ny: usize,
    nz: usize,
    p: usize,
    pl: usize,
    kern: &K,
) {
    for y in 1..=ny {
        let r = x * pl + y * p;
        for z in 1..=nz {
            let nb = Nbhd3 {
                xm: 0.0,
                ym: 0.0,
                zm: 0.0,
                m: a[r + z],
                zp: a[r + z + 1],
                yp: a[r + p + z],
                xp: a[r + pl + z],
                new_xm: a[r - pl + z],
                new_ym: a[r - p + z],
                new_zm: a[r + z - 1],
            };
            a[r + z] = kern.scalar(nb);
        }
    }
}

/// One scalar skewed band over slab windows `[xl-(k-1), xr-(k-1)] ∩ [1, nx]`.
pub fn band_scalar_gs3d<K: Kernel3d<f64>>(
    g: &mut Grid3<f64>,
    xl: usize,
    xr: usize,
    vl: usize,
    kern: &K,
) {
    debug_assert!(K::IS_GS);
    let (nx, ny, nz) = (g.nx(), g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    let a = g.data_mut();
    for k in 1..=vl {
        let lo = xl.saturating_sub(k - 1).max(1);
        let hi = (xr + 1).saturating_sub(k).min(nx);
        for x in lo..=hi {
            gs_slab(a, x, ny, nz, p, pl, kern);
        }
    }
}

/// Scratch for the banded 3-D engine.
pub struct BandScratch3d<const VL: usize> {
    ring: Vec<Vec<Pack<f64, VL>>>,
    o_prev: Vec<Pack<f64, VL>>,
    o_cur: Vec<Pack<f64, VL>>,
    saved: Vec<Vec<f64>>,
    ny: usize,
    nz: usize,
}

impl<const VL: usize> BandScratch3d<VL> {
    /// Allocate scratch for stride `s` and inner extents `ny × nz`.
    pub fn new(s: usize, ny: usize, nz: usize) -> Self {
        let wp = (ny + 2) * (nz + 2);
        BandScratch3d {
            ring: (0..s + 1).map(|_| vec![Pack::splat(0.0); wp]).collect(),
            o_prev: vec![Pack::splat(0.0); wp],
            o_cur: vec![Pack::splat(0.0); wp],
            saved: (0..VL).map(|_| vec![0.0; wp]).collect(),
            ny,
            nz,
        }
    }
}

/// One temporally vectorized skewed band (3-D Gauss-Seidel),
/// bit-identical to [`band_scalar_gs3d`]; edge/narrow tiles fall back.
pub fn band_temporal_gs3d<const VL: usize, K: Kernel3d<f64>>(
    g: &mut Grid3<f64>,
    xl: usize,
    xr: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch3d<VL>,
) {
    debug_assert!(K::IS_GS);
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    let (nx, ny, nz) = (g.nx(), g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    assert_eq!((sc.ny, sc.nz), (ny, nz), "scratch shape mismatch");
    let width = (xr + 1).saturating_sub(xl);
    if xl <= VL || xr > nx || width < (VL + 1) * s + VL {
        band_scalar_gs3d(g, xl, xr, VL, kern);
        return;
    }
    let bc = g.boundary().value();
    let a = g.data_mut();
    let x_start = xl - (VL - 1);
    let x_max = xr + 1 - VL * s;
    let wz = nz + 2;
    let _wp = (ny + 2) * wz;
    let lp = |y: usize, z: usize| y * wz + z;

    // Prologue slabs, stashing the slab each pass is about to clobber.
    for k in 1..VL {
        let src = (x_start + (VL - k) * s) * pl;
        let dst = &mut sc.saved[k - 1];
        for y in 0..ny + 2 {
            for z in 0..wz {
                dst[lp(y, z)] = a[src + y * p + z];
            }
        }
        for x in xl - (k - 1)..=x_start + (VL - k) * s {
            gs_slab(a, x, ny, nz, p, pl, kern);
        }
    }

    // Initial ring planes and O(x_start-1).
    let rlen = s + 1;
    for plane in sc.ring.iter_mut() {
        for slot in plane.iter_mut() {
            *slot = Pack::splat(bc);
        }
    }
    {
        let dst = &mut sc.ring[x_start % rlen];
        for y in 1..=ny {
            for z in 1..=nz {
                dst[lp(y, z)] = Pack::from_fn(|i| {
                    if i == VL - 1 {
                        a[x_start * pl + y * p + z]
                    } else {
                        sc.saved[i][lp(y, z)]
                    }
                });
            }
        }
    }
    for j in 1..=s {
        let x = x_start + j;
        let dst = &mut sc.ring[x % rlen];
        for y in 1..=ny {
            for z in 1..=nz {
                dst[lp(y, z)] = Pack::from_fn(|i| a[(x + (VL - 1 - i) * s) * pl + y * p + z]);
            }
        }
    }
    for slot in sc.o_prev.iter_mut() {
        *slot = Pack::splat(bc);
    }
    for y in 1..=ny {
        for z in 1..=nz {
            sc.o_prev[lp(y, z)] =
                Pack::from_fn(|i| a[(x_start - 1 + (VL - 1 - i) * s) * pl + y * p + z]);
        }
    }
    for slot in sc.o_cur.iter_mut() {
        *slot = Pack::splat(bc);
    }

    // Steady state.
    let zero = Pack::<f64, VL>::splat(0.0);
    for x in x_start..=x_max {
        let i0 = x % rlen;
        let ip1 = (x + 1) % rlen;
        let ips = (x + s) % rlen;
        let mut wplane = core::mem::take(&mut sc.ring[ips]);
        {
            let r0 = &sc.ring[i0];
            let rp1 = &sc.ring[ip1];
            for y in 1..=ny {
                let mut o_z = Pack::splat(bc);
                for z in 1..=nz {
                    let idx = lp(y, z);
                    let nb = Nbhd3 {
                        xm: zero,
                        ym: zero,
                        zm: zero,
                        m: r0[idx],
                        zp: r0[idx + 1],
                        yp: r0[idx + wz],
                        xp: rp1[idx],
                        new_xm: sc.o_prev[idx],
                        new_ym: sc.o_cur[idx - wz],
                        new_zm: o_z,
                    };
                    let o = kern.pack(nb);
                    a[x * pl + y * p + z] = o.top();
                    let bottom = a[(x + VL * s) * pl + y * p + z];
                    wplane[idx] = o.shift_up_insert(bottom);
                    sc.o_cur[idx] = o;
                    o_z = o;
                }
            }
            for z in 0..wz {
                wplane[lp(0, z)] = Pack::splat(bc);
                wplane[lp(ny + 1, z)] = Pack::splat(bc);
            }
            for y in 1..=ny {
                wplane[lp(y, 0)] = Pack::splat(bc);
                wplane[lp(y, nz + 1)] = Pack::splat(bc);
            }
        }
        sc.ring[ips] = wplane;
        core::mem::swap(&mut sc.o_prev, &mut sc.o_cur);
        for z in 0..wz {
            sc.o_cur[lp(0, z)] = Pack::splat(bc);
        }
    }

    // Epilogue: materialize register-resident levels, then finish scalar.
    for j in x_max + 1..=x_max + s {
        let src = &sc.ring[j % rlen];
        for i in 1..VL {
            let slab = (j + (VL - 1 - i) * s) * pl;
            for y in 1..=ny {
                for z in 1..=nz {
                    a[slab + y * p + z] = src[lp(y, z)].extract(i);
                }
            }
        }
    }
    for i in 0..VL - 1 {
        let slab = (x_max + (VL - 1 - i) * s) * pl;
        for y in 1..=ny {
            for z in 1..=nz {
                a[slab + y * p + z] = sc.o_prev[lp(y, z)].extract(i);
            }
        }
    }
    for k in 1..=VL {
        let lo = x_max + (VL - k) * s + 1;
        let hi = xr + 1 - k;
        for x in lo..=hi {
            gs_slab(a, x, ny, nz, p, pl, kern);
        }
    }
}

/// Decompose one band of height `VL` into skewed slab-blocks and execute
/// them in ascending order.
pub fn band_sweep_gs3d<const VL: usize, K: Kernel3d<f64>>(
    g: &mut Grid3<f64>,
    block: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch3d<VL>,
    temporal: bool,
) {
    let nx = g.nx();
    let span = nx + VL - 1;
    let nblocks = span.div_ceil(block);
    for i in 0..nblocks {
        let xl = i * block + 1;
        let xr = ((i + 1) * block).min(span);
        if temporal {
            band_temporal_gs3d::<VL, K>(g, xl, xr, s, kern, sc);
        } else {
            band_scalar_gs3d(g, xl, xr, VL, kern);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::GsKern3d;
    use tempora_grid::{fill_random_3d, Boundary};
    use tempora_stencil::reference;
    use tempora_stencil::Gs3dCoeffs;

    fn run_banded(
        g: &Grid3<f64>,
        kern: &GsKern3d,
        steps: usize,
        block: usize,
        s: usize,
        temporal: bool,
    ) -> Grid3<f64> {
        const VL: usize = 4;
        let mut g = g.clone();
        let mut sc = BandScratch3d::<VL>::new(s, g.ny(), g.nz());
        for _ in 0..steps / VL {
            band_sweep_gs3d::<VL, _>(&mut g, block, s, kern, &mut sc, temporal);
        }
        for _ in 0..steps % VL {
            let wp = (g.ny() + 2) * (g.nz() + 2);
            let (mut pa, mut pb) = (vec![0.0; wp], vec![0.0; wp]);
            crate::t3d::scalar_step_inplace(&mut g, kern, &mut pa, &mut pb);
        }
        g
    }

    #[test]
    fn scalar_banded_sweep_matches_reference() {
        let c = Gs3dCoeffs::classic(0.12);
        let kern = GsKern3d(c);
        for &(nx, block) in &[(20usize, 6usize), (33, 11), (16, 16)] {
            let mut g = Grid3::new(nx, 5, 6, 1, Boundary::Dirichlet(0.3));
            fill_random_3d(&mut g, nx as u64, -1.0, 1.0);
            let ours = run_banded(&g, &kern, 8, block, 2, false);
            let gold = reference::gs3d(&g, c, 8);
            assert!(
                ours.interior_eq(&gold),
                "nx={nx} block={block} diff {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    fn temporal_banded_sweep_matches_reference() {
        let c = Gs3dCoeffs::new(0.14, 0.11, 0.1, 0.22, 0.09, 0.12, 0.08);
        let kern = GsKern3d(c);
        for &(nx, block, s) in &[(96usize, 32usize, 2usize), (120, 40, 3)] {
            let mut g = Grid3::new(nx, 5, 7, 1, Boundary::Dirichlet(-0.1));
            fill_random_3d(&mut g, (nx + s) as u64, -1.0, 1.0);
            for steps in [4usize, 8] {
                let ours = run_banded(&g, &kern, steps, block, s, true);
                let gold = reference::gs3d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} block={block} s={s} steps={steps} diff {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn narrow_blocks_fall_back() {
        let c = Gs3dCoeffs::classic(0.1);
        let kern = GsKern3d(c);
        let mut g = Grid3::new(30, 4, 4, 1, Boundary::Dirichlet(0.0));
        fill_random_3d(&mut g, 7, -1.0, 1.0);
        let ours = run_banded(&g, &kern, 8, 8, 2, true);
        let gold = reference::gs3d(&g, c, 8);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }
}
