//! Skewed-band (parallelogram) execution of the 3-D Gauss-Seidel engine —
//! [`crate::t1d_band`] with whole `(y, z)` planes as the unit of the
//! outer dimension.

use crate::kernels::{Kernel3d, Nbhd3};
use tempora_grid::Grid3;
use tempora_simd::Pack;

/// Scalar in-place 3-D Gauss-Seidel update of one slab `x`.
#[inline]
fn gs_slab<K: Kernel3d<f64>>(
    a: &mut [f64],
    x: usize,
    ny: usize,
    nz: usize,
    p: usize,
    pl: usize,
    kern: &K,
) {
    for y in 1..=ny {
        let r = x * pl + y * p;
        for z in 1..=nz {
            let nb = Nbhd3 {
                xm: 0.0,
                ym: 0.0,
                zm: 0.0,
                m: a[r + z],
                zp: a[r + z + 1],
                yp: a[r + p + z],
                xp: a[r + pl + z],
                new_xm: a[r - pl + z],
                new_ym: a[r - p + z],
                new_zm: a[r + z - 1],
            };
            a[r + z] = kern.scalar(nb);
        }
    }
}

/// One scalar skewed band over slab windows `[xl-(k-1), xr-(k-1)] ∩ [1, nx]`.
pub fn band_scalar_gs3d<K: Kernel3d<f64>>(
    g: &mut Grid3<f64>,
    xl: usize,
    xr: usize,
    vl: usize,
    kern: &K,
) {
    debug_assert!(K::IS_GS);
    let (nx, ny, nz) = (g.nx(), g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    let a = g.data_mut();
    for k in 1..=vl {
        let lo = xl.saturating_sub(k - 1).max(1);
        let hi = (xr + 1).saturating_sub(k).min(nx);
        for x in lo..=hi {
            gs_slab(a, x, ny, nz, p, pl, kern);
        }
    }
}

/// Scratch for the banded 3-D engine.
pub struct BandScratch3d<const VL: usize> {
    ring: Vec<Vec<Pack<f64, VL>>>,
    o_prev: Vec<Pack<f64, VL>>,
    o_cur: Vec<Pack<f64, VL>>,
    saved: Vec<Vec<f64>>,
    ny: usize,
    nz: usize,
}

impl<const VL: usize> BandScratch3d<VL> {
    /// Allocate scratch for stride `s` and inner extents `ny × nz`.
    pub fn new(s: usize, ny: usize, nz: usize) -> Self {
        let wp = (ny + 2) * (nz + 2);
        BandScratch3d {
            ring: (0..s + 1).map(|_| vec![Pack::splat(0.0); wp]).collect(),
            o_prev: vec![Pack::splat(0.0); wp],
            o_cur: vec![Pack::splat(0.0); wp],
            saved: (0..VL).map(|_| vec![0.0; wp]).collect(),
            ny,
            nz,
        }
    }
}

/// One temporally vectorized skewed band (3-D Gauss-Seidel),
/// bit-identical to [`band_scalar_gs3d`]; edge/narrow tiles fall back.
pub fn band_temporal_gs3d<const VL: usize, K: Kernel3d<f64>>(
    g: &mut Grid3<f64>,
    xl: usize,
    xr: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch3d<VL>,
) {
    debug_assert!(K::IS_GS);
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    let (nx, ny, nz) = (g.nx(), g.ny(), g.nz());
    assert_eq!((sc.ny, sc.nz), (ny, nz), "scratch shape mismatch");
    if !crate::t1d_band::vector_band_shape::<VL>(xl, xr, nx, s) {
        band_scalar_gs3d(g, xl, xr, VL, kern);
        return;
    }
    let (x_start, x_max) = band_prologue3d::<VL, K>(g, xl, xr, s, kern, sc);
    band_steady3d::<VL, K>(g, s, kern, sc, x_start, x_max);
    band_epilogue3d::<VL, K>(g, xr, s, kern, sc, x_max);
}

/// Phase 1 of a 3-D temporal band: scalar prologue slabs plus the initial
/// ring planes and the previous output plane `O(x_start-1, ·, ·)` in
/// `sc.o_prev` (with `sc.o_cur` reset to the boundary value — its row 0
/// feeds the first plane's `y = 1` newest-north reads). Returns
/// `(x_start, x_max)`. Shared by the portable and AVX2 steady states.
fn band_prologue3d<const VL: usize, K: Kernel3d<f64>>(
    g: &mut Grid3<f64>,
    xl: usize,
    xr: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch3d<VL>,
) -> (usize, usize) {
    let (ny, nz) = (g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    let bc = g.boundary().value();
    let a = g.data_mut();
    let x_start = xl - (VL - 1);
    let x_max = xr + 1 - VL * s;
    let wz = nz + 2;
    let lp = |y: usize, z: usize| y * wz + z;

    // Prologue slabs, stashing the slab each pass is about to clobber.
    for k in 1..VL {
        let src = (x_start + (VL - k) * s) * pl;
        let dst = &mut sc.saved[k - 1];
        for y in 0..ny + 2 {
            for z in 0..wz {
                dst[lp(y, z)] = a[src + y * p + z];
            }
        }
        for x in xl - (k - 1)..=x_start + (VL - k) * s {
            gs_slab(a, x, ny, nz, p, pl, kern);
        }
    }

    // Initial ring planes and O(x_start-1).
    let rlen = s + 1;
    for plane in sc.ring.iter_mut() {
        for slot in plane.iter_mut() {
            *slot = Pack::splat(bc);
        }
    }
    {
        let dst = &mut sc.ring[x_start % rlen];
        for y in 1..=ny {
            for z in 1..=nz {
                dst[lp(y, z)] = Pack::from_fn(|i| {
                    if i == VL - 1 {
                        a[x_start * pl + y * p + z]
                    } else {
                        sc.saved[i][lp(y, z)]
                    }
                });
            }
        }
    }
    for j in 1..=s {
        let x = x_start + j;
        let dst = &mut sc.ring[x % rlen];
        for y in 1..=ny {
            for z in 1..=nz {
                dst[lp(y, z)] = Pack::from_fn(|i| a[(x + (VL - 1 - i) * s) * pl + y * p + z]);
            }
        }
    }
    for slot in sc.o_prev.iter_mut() {
        *slot = Pack::splat(bc);
    }
    for y in 1..=ny {
        for z in 1..=nz {
            sc.o_prev[lp(y, z)] =
                Pack::from_fn(|i| a[(x_start - 1 + (VL - 1 - i) * s) * pl + y * p + z]);
        }
    }
    for slot in sc.o_cur.iter_mut() {
        *slot = Pack::splat(bc);
    }
    (x_start, x_max)
}

/// Portable steady state of a 3-D temporal band.
fn band_steady3d<const VL: usize, K: Kernel3d<f64>>(
    g: &mut Grid3<f64>,
    s: usize,
    kern: &K,
    sc: &mut BandScratch3d<VL>,
    x_start: usize,
    x_max: usize,
) {
    let (ny, nz) = (g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    let bc = g.boundary().value();
    let a = g.data_mut();
    let wz = nz + 2;
    let lp = |y: usize, z: usize| y * wz + z;
    let rlen = s + 1;
    let zero = Pack::<f64, VL>::splat(0.0);
    for x in x_start..=x_max {
        let i0 = x % rlen;
        let ip1 = (x + 1) % rlen;
        let ips = (x + s) % rlen;
        let mut wplane = core::mem::take(&mut sc.ring[ips]);
        {
            let r0 = &sc.ring[i0];
            let rp1 = &sc.ring[ip1];
            for y in 1..=ny {
                let mut o_z = Pack::splat(bc);
                for z in 1..=nz {
                    let idx = lp(y, z);
                    let nb = Nbhd3 {
                        xm: zero,
                        ym: zero,
                        zm: zero,
                        m: r0[idx],
                        zp: r0[idx + 1],
                        yp: r0[idx + wz],
                        xp: rp1[idx],
                        new_xm: sc.o_prev[idx],
                        new_ym: sc.o_cur[idx - wz],
                        new_zm: o_z,
                    };
                    let o = kern.pack(nb);
                    a[x * pl + y * p + z] = o.top();
                    let bottom = a[(x + VL * s) * pl + y * p + z];
                    wplane[idx] = o.shift_up_insert(bottom);
                    sc.o_cur[idx] = o;
                    o_z = o;
                }
            }
            for z in 0..wz {
                wplane[lp(0, z)] = Pack::splat(bc);
                wplane[lp(ny + 1, z)] = Pack::splat(bc);
            }
            for y in 1..=ny {
                wplane[lp(y, 0)] = Pack::splat(bc);
                wplane[lp(y, nz + 1)] = Pack::splat(bc);
            }
        }
        sc.ring[ips] = wplane;
        core::mem::swap(&mut sc.o_prev, &mut sc.o_cur);
        for z in 0..wz {
            sc.o_cur[lp(0, z)] = Pack::splat(bc);
        }
    }
}

/// Phase 3 of a 3-D temporal band: materialize register-resident levels,
/// then finish each level scalar.
fn band_epilogue3d<const VL: usize, K: Kernel3d<f64>>(
    g: &mut Grid3<f64>,
    xr: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch3d<VL>,
    x_max: usize,
) {
    let (ny, nz) = (g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    let a = g.data_mut();
    let wz = nz + 2;
    let lp = |y: usize, z: usize| y * wz + z;
    let rlen = s + 1;
    for j in x_max + 1..=x_max + s {
        let src = &sc.ring[j % rlen];
        for i in 1..VL {
            let slab = (j + (VL - 1 - i) * s) * pl;
            for y in 1..=ny {
                for z in 1..=nz {
                    a[slab + y * p + z] = src[lp(y, z)].extract(i);
                }
            }
        }
    }
    for i in 0..VL - 1 {
        let slab = (x_max + (VL - 1 - i) * s) * pl;
        for y in 1..=ny {
            for z in 1..=nz {
                a[slab + y * p + z] = sc.o_prev[lp(y, z)].extract(i);
            }
        }
    }
    for k in 1..=VL {
        let lo = x_max + (VL - k) * s + 1;
        let hi = xr + 1 - k;
        for x in lo..=hi {
            gs_slab(a, x, ny, nz, p, pl, kern);
        }
    }
}

/// One temporally vectorized skewed band (3-D Gauss-Seidel) with the
/// hand-scheduled AVX2 steady state — the same scheduling
/// (`vfmadd231pd`, `vpermpd`, `vblendpd`) as `crate::t3d_avx2`, with newest operands
/// from the previous output plane (`x-1`), the output plane being filled
/// (`y-1`) and the previous output register (`z-1`), exactly as in the
/// portable steady state (§3.4). Prologue/epilogue are shared with
/// [`band_temporal_gs3d`], so results stay bit-identical to it and to
/// [`band_scalar_gs3d`]; edge or narrow tiles fall back to the scalar
/// band. Panics without AVX2+FMA.
#[cfg(target_arch = "x86_64")]
pub fn band_temporal_gs3d_avx2(
    g: &mut Grid3<f64>,
    xl: usize,
    xr: usize,
    s: usize,
    kern: &crate::kernels::GsKern3d,
    sc: &mut BandScratch3d<4>,
) {
    use crate::kernels::GsKern3d;
    const VL: usize = 4;
    assert!(
        tempora_simd::arch::avx2_available(),
        "AVX2+FMA not available on this CPU"
    );
    assert!(
        s >= GsKern3d::MIN_STRIDE,
        "stride {s} illegal for this kernel"
    );
    let (nx, ny, nz) = (g.nx(), g.ny(), g.nz());
    assert_eq!((sc.ny, sc.nz), (ny, nz), "scratch shape mismatch");
    if !crate::t1d_band::vector_band_shape::<VL>(xl, xr, nx, s) {
        band_scalar_gs3d(g, xl, xr, VL, kern);
        return;
    }
    let (x_start, x_max) = band_prologue3d::<VL, GsKern3d>(g, xl, xr, s, kern, sc);
    // SAFETY: availability asserted above.
    unsafe { imp::band_steady_gs3d_avx2(g, s, kern, sc, x_start, x_max) };
    band_epilogue3d::<VL, GsKern3d>(g, xr, s, kern, sc, x_max);
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::{BandScratch3d, Grid3, Pack};
    use crate::kernels::GsKern3d;
    use tempora_simd::arch::avx2;

    /// The AVX2 steady state of one skewed 3-D Gauss-Seidel band:
    /// identical algebra and iteration order to
    /// [`super::band_steady3d`].
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn band_steady_gs3d_avx2(
        g: &mut Grid3<f64>,
        s: usize,
        kern: &GsKern3d,
        sc: &mut BandScratch3d<4>,
        x_start: usize,
        x_max: usize,
    ) {
        const VL: usize = 4;
        let (ny, nz) = (g.ny(), g.nz());
        let (p, pl) = (g.pitch(), g.plane());
        let bc = g.boundary().value();
        let a = g.data_mut();
        let wz = nz + 2;
        let lp = |y: usize, z: usize| y * wz + z;
        let rlen = s + 1;
        let cxm = avx2::splat(kern.0.cxm);
        let cym = avx2::splat(kern.0.cym);
        let czm = avx2::splat(kern.0.czm);
        let cc = avx2::splat(kern.0.cc);
        let czp = avx2::splat(kern.0.czp);
        let cyp = avx2::splat(kern.0.cyp);
        let cxp = avx2::splat(kern.0.cxp);
        // SAFETY: every unsafe op in the band steady-state loop is an
        // `arch::avx2` vocabulary call whose sole precondition is
        // AVX2/FMA availability — discharged by this fn's own
        // `#[target_feature(enable = "avx2,fma")]` caller contract. All
        // grid and ring accesses use checked slice indexing; the deepest
        // read `a[(x_max + VL·s)·pl + …]` is in bounds because the band
        // shape check verified `x_max + VL·s ≤ nx + 1` before dispatch.
        unsafe {
            for x in x_start..=x_max {
                let i0 = x % rlen;
                let ip1 = (x + 1) % rlen;
                let ips = (x + s) % rlen;
                let mut wplane = core::mem::take(&mut sc.ring[ips]);
                {
                    let r0 = &sc.ring[i0];
                    let rp1 = &sc.ring[ip1];
                    for y in 1..=ny {
                        let mut o_z = avx2::splat(bc); // O(x, y, 0): z-boundary
                        let mut m = avx2::from_pack(r0[lp(y, 1)]);
                        for z in 1..=nz {
                            let idx = lp(y, z);
                            let zp = avx2::from_pack(r0[idx + 1]);
                            let yp = avx2::from_pack(r0[idx + wz]);
                            let xp = avx2::from_pack(rp1[idx]);
                            let new_xm = avx2::from_pack(sc.o_prev[idx]);
                            let new_ym = avx2::from_pack(sc.o_cur[idx - wz]);
                            // The same fused tree as Gs3dCoeffs::apply.
                            let o = avx2::fmadd(
                                new_xm,
                                cxm,
                                avx2::fmadd(
                                    new_ym,
                                    cym,
                                    avx2::fmadd(
                                        o_z,
                                        czm,
                                        avx2::fmadd(
                                            m,
                                            cc,
                                            avx2::fmadd(
                                                zp,
                                                czp,
                                                avx2::fmadd(yp, cyp, avx2::mul(xp, cxp)),
                                            ),
                                        ),
                                    ),
                                ),
                            );
                            a[x * pl + y * p + z] = avx2::extract_top(o);
                            let bottom = a[(x + VL * s) * pl + y * p + z];
                            wplane[idx] = avx2::to_pack(avx2::shift_up_insert(o, bottom));
                            sc.o_cur[idx] = avx2::to_pack(o);
                            o_z = o;
                            m = zp;
                        }
                    }
                    for z in 0..wz {
                        wplane[lp(0, z)] = Pack::splat(bc);
                        wplane[lp(ny + 1, z)] = Pack::splat(bc);
                    }
                    for y in 1..=ny {
                        wplane[lp(y, 0)] = Pack::splat(bc);
                        wplane[lp(y, nz + 1)] = Pack::splat(bc);
                    }
                }
                sc.ring[ips] = wplane;
                core::mem::swap(&mut sc.o_prev, &mut sc.o_cur);
                for z in 0..wz {
                    sc.o_cur[lp(0, z)] = Pack::splat(bc);
                }
            }
        }
    }
}

/// Decompose one band of height `VL` into skewed slab-blocks and execute
/// them in ascending order.
pub fn band_sweep_gs3d<const VL: usize, K: Kernel3d<f64>>(
    g: &mut Grid3<f64>,
    block: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch3d<VL>,
    temporal: bool,
) {
    let nx = g.nx();
    let span = nx + VL - 1;
    let nblocks = span.div_ceil(block);
    for i in 0..nblocks {
        let xl = i * block + 1;
        let xr = ((i + 1) * block).min(span);
        if temporal {
            band_temporal_gs3d::<VL, K>(g, xl, xr, s, kern, sc);
        } else {
            band_scalar_gs3d(g, xl, xr, VL, kern);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::GsKern3d;
    use tempora_grid::{fill_random_3d, Boundary};
    use tempora_stencil::reference;
    use tempora_stencil::Gs3dCoeffs;

    fn run_banded(
        g: &Grid3<f64>,
        kern: &GsKern3d,
        steps: usize,
        block: usize,
        s: usize,
        temporal: bool,
    ) -> Grid3<f64> {
        const VL: usize = 4;
        let mut g = g.clone();
        let mut sc = BandScratch3d::<VL>::new(s, g.ny(), g.nz());
        for _ in 0..steps / VL {
            band_sweep_gs3d::<VL, _>(&mut g, block, s, kern, &mut sc, temporal);
        }
        for _ in 0..steps % VL {
            let wp = (g.ny() + 2) * (g.nz() + 2);
            let (mut pa, mut pb) = (vec![0.0; wp], vec![0.0; wp]);
            crate::t3d::scalar_step_inplace(&mut g, kern, &mut pa, &mut pb);
        }
        g
    }

    #[test]
    fn scalar_banded_sweep_matches_reference() {
        let c = Gs3dCoeffs::classic(0.12);
        let kern = GsKern3d(c);
        for &(nx, block) in &[(20usize, 6usize), (33, 11), (16, 16)] {
            let mut g = Grid3::new(nx, 5, 6, 1, Boundary::Dirichlet(0.3));
            fill_random_3d(&mut g, nx as u64, -1.0, 1.0);
            let ours = run_banded(&g, &kern, 8, block, 2, false);
            let gold = reference::gs3d(&g, c, 8);
            assert!(
                ours.interior_eq(&gold),
                "nx={nx} block={block} diff {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    fn temporal_banded_sweep_matches_reference() {
        let c = Gs3dCoeffs::new(0.14, 0.11, 0.1, 0.22, 0.09, 0.12, 0.08);
        let kern = GsKern3d(c);
        for &(nx, block, s) in &[(96usize, 32usize, 2usize), (120, 40, 3)] {
            let mut g = Grid3::new(nx, 5, 7, 1, Boundary::Dirichlet(-0.1));
            fill_random_3d(&mut g, (nx + s) as u64, -1.0, 1.0);
            for steps in [4usize, 8] {
                let ours = run_banded(&g, &kern, steps, block, s, true);
                let gold = reference::gs3d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} block={block} s={s} steps={steps} diff {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx2_band_matches_scalar_oracle_bitwise() {
        if !tempora_simd::arch::avx2_available() {
            return;
        }
        const VL: usize = 4;
        let c = Gs3dCoeffs::new(0.14, 0.11, 0.1, 0.22, 0.09, 0.12, 0.08);
        let kern = GsKern3d(c);
        for &(nx, block, s) in &[
            (96usize, 32usize, 2usize),
            (120, 40, 3),
            (30, 8, 2), // every tile narrow: pure scalar fallback
        ] {
            let mut g = Grid3::new(nx, 5, 7, 1, Boundary::Dirichlet(-0.1));
            fill_random_3d(&mut g, (nx + s) as u64, -1.0, 1.0);
            for steps in [4usize, 8] {
                let mut ours = g.clone();
                let mut sc = BandScratch3d::<VL>::new(s, ours.ny(), ours.nz());
                let span = nx + VL - 1;
                for _ in 0..steps / VL {
                    for i in 0..span.div_ceil(block) {
                        let xl = i * block + 1;
                        let xr = ((i + 1) * block).min(span);
                        band_temporal_gs3d_avx2(&mut ours, xl, xr, s, &kern, &mut sc);
                    }
                }
                for _ in 0..steps % VL {
                    let wp = (ours.ny() + 2) * (ours.nz() + 2);
                    let (mut pa, mut pb) = (vec![0.0; wp], vec![0.0; wp]);
                    crate::t3d::scalar_step_inplace(&mut ours, &kern, &mut pa, &mut pb);
                }
                let gold = reference::gs3d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} block={block} s={s} steps={steps} diff {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn narrow_blocks_fall_back() {
        let c = Gs3dCoeffs::classic(0.1);
        let kern = GsKern3d(c);
        let mut g = Grid3::new(30, 4, 4, 1, Boundary::Dirichlet(0.0));
        fill_random_3d(&mut g, 7, -1.0, 1.0);
        let ours = run_banded(&g, &kern, 8, 8, 2, true);
        let gold = reference::gs3d(&g, c, 8);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }
}
