//! Hand-scheduled AVX2 (`std::arch`) variants of the 1-D temporal
//! engines (Jacobi *and* Gauss-Seidel).
//!
//! The portable engine in [`crate::t1d`] leaves instruction selection to
//! LLVM; these variants pin the steady state to the exact AVX instruction
//! mix the paper's §3.3 analysis assumes — `vfmadd231pd` for the stencil,
//! one `vpermpd` (lane-crossing rotate) plus one `vblendpd` (in-lane) for
//! the input-vector production — with the ring kept in `__m256d`
//! registers via a fixed-capacity array. Prologue, epilogue and all
//! boundary handling are shared with the portable engine, so results stay
//! bit-identical to it (and therefore to the scalar reference). The
//! Gauss-Seidel steady state feeds the previous *output* vector back as
//! the newest-west operand (§3.4) from a register.
//!
//! Use [`crate::engine`] (or the legacy [`run_heat1d_auto`]) for
//! transparent runtime dispatch.

use crate::kernels::{GsKern1d, JacobiKern1d, Kernel1d};
use crate::t1d::{self, Scratch1d};
use tempora_grid::Grid1;

/// Maximum supported space stride of the AVX2 path (ring capacity).
pub const MAX_STRIDE: usize = 15;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;
    use tempora_simd::arch::avx2;
    use tempora_simd::Pack;

    /// One temporal tile with the AVX2 steady state. Falls back to the
    /// portable tile for degenerate sizes.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tile_avx2(
        a: &mut [f64],
        n: usize,
        kern: &JacobiKern1d,
        s: usize,
        scratch: &mut Scratch1d<4>,
    ) {
        const VL: usize = 4;
        assert!((JacobiKern1d::MIN_STRIDE..=MAX_STRIDE).contains(&s));
        if n < VL * s {
            t1d::tile::<4, false, JacobiKern1d>(a, n, kern, s, scratch);
            return;
        }
        // Prologue + initial ring via the portable engine's head logic:
        // run the portable tile on a *copy*? No — we re-derive the ring
        // here exactly as the portable engine does, sharing its scratch
        // planes, then run the vector loop with intrinsics, then let the
        // shared epilogue drain. To keep the two engines in lock-step the
        // portable tile is split into three phases; see `t1d::tile_phases`.
        let (ring_init, x_max) = t1d::tile_prologue::<4, JacobiKern1d>(a, n, kern, s, scratch);

        let cw = avx2::splat(kern.0.w);
        let cc = avx2::splat(kern.0.c);
        let ce = avx2::splat(kern.0.e);

        let ring_len = s + 1;
        let mut ring = [avx2::splat(0.0); MAX_STRIDE + 2];
        for (k, slot) in ring_init.iter().enumerate().take(ring_len) {
            ring[k] = avx2::from_pack(*slot);
        }

        let mut vm1 = ring[0];
        let mut v0 = ring[1 % ring_len];
        let mut ip1 = 2 % ring_len;
        let mut im1 = 0usize;
        // SAFETY: every unsafe op in the steady-state loop is an AVX2/FMA
        // intrinsic or `arch::avx2` vocabulary call whose sole
        // precondition is feature availability — discharged by this fn's
        // own `#[target_feature(enable = "avx2,fma")]` caller contract.
        // All grid access (`a[x]`, `a[x + VL·s]`) is checked slice
        // indexing, in bounds because `tile_prologue` established
        // `x_max + VL·s ≤ n + 1` for the non-degenerate `n ≥ VL·s` case.
        unsafe {
            for x in 1..=x_max {
                let vp1 = ring[ip1];
                // w·vm1 + (c·v0 + e·vp1), the same fused tree as the scalar
                // oracle: l.mul_add(w, m.mul_add(c, r*e)).
                let o = avx2::fmadd(vm1, cw, avx2::fmadd(v0, cc, avx2::mul(vp1, ce)));
                // Store the finished top lane a[t+4][x].
                a[x] = avx2::extract_top(o);
                // Produce V(x+s): vpermpd rotate + vblendpd bottom insert.
                let bottom = a[x + VL * s];
                ring[im1] = avx2::shift_up_insert(o, bottom);
                vm1 = v0;
                v0 = vp1;
                im1 = if im1 + 1 == ring_len { 0 } else { im1 + 1 };
                ip1 = if ip1 + 1 == ring_len { 0 } else { ip1 + 1 };
            }
        }

        // Hand the surviving ring back for the shared epilogue.
        let mut back = [Pack::<f64, 4>::splat(0.0); 17];
        for k in 0..ring_len {
            back[k] = avx2::to_pack(ring[k]);
        }
        t1d::tile_epilogue::<4, JacobiKern1d>(a, n, kern, s, scratch, &back, x_max);
    }

    /// One Gauss-Seidel temporal tile with the AVX2 steady state. Falls
    /// back to the portable tile for degenerate sizes.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tile_gs_avx2(
        a: &mut [f64],
        n: usize,
        kern: &GsKern1d,
        s: usize,
        scratch: &mut Scratch1d<4>,
    ) {
        const VL: usize = 4;
        assert!((GsKern1d::MIN_STRIDE..=MAX_STRIDE).contains(&s));
        if n < VL * s {
            t1d::tile::<4, false, GsKern1d>(a, n, kern, s, scratch);
            return;
        }
        let boundary_l = a[0];
        let (ring_init, x_max) = t1d::tile_prologue::<4, GsKern1d>(a, n, kern, s, scratch);

        let cw = avx2::splat(kern.0.w);
        let cc = avx2::splat(kern.0.c);
        let ce = avx2::splat(kern.0.e);

        let ring_len = s + 1;
        let mut ring = [avx2::splat(0.0); MAX_STRIDE + 2];
        for (k, slot) in ring_init.iter().enumerate().take(ring_len) {
            ring[k] = avx2::from_pack(*slot);
        }

        // §3.4: the newest-west operand is the previous output vector.
        let mut o_prev = avx2::from_pack(t1d::gs_initial_output::<4>(boundary_l, s, scratch));
        let mut v0 = ring[1 % ring_len];
        let mut ip1 = 2 % ring_len;
        let mut im1 = 0usize;
        // SAFETY: same contract as `tile_avx2`'s steady state — only
        // feature-gated intrinsics/vocabulary calls (discharged by this
        // fn's `#[target_feature(enable = "avx2,fma")]`), with all grid
        // access through checked indexing (`x_max + VL·s ≤ n + 1` per
        // the prologue).
        unsafe {
            for x in 1..=x_max {
                let vp1 = ring[ip1];
                // w·O(x-1) + (c·v0 + e·vp1), the same fused tree as the
                // scalar oracle: l_new.mul_add(w, m.mul_add(c, r*e)).
                let o = avx2::fmadd(o_prev, cw, avx2::fmadd(v0, cc, avx2::mul(vp1, ce)));
                a[x] = avx2::extract_top(o);
                let bottom = a[x + VL * s];
                ring[im1] = avx2::shift_up_insert(o, bottom);
                o_prev = o;
                v0 = vp1;
                im1 = if im1 + 1 == ring_len { 0 } else { im1 + 1 };
                ip1 = if ip1 + 1 == ring_len { 0 } else { ip1 + 1 };
            }
        }

        let mut back = [Pack::<f64, 4>::splat(0.0); 17];
        for k in 0..ring_len {
            back[k] = avx2::to_pack(ring[k]);
        }
        t1d::tile_epilogue::<4, GsKern1d>(a, n, kern, s, scratch, &back, x_max);
    }
}

/// One Heat-1D temporal tile with the AVX2 steady state (shared
/// prologue/epilogue with the portable engine; degenerate `n < VL·s`
/// tiles fall back to the portable schedule). Panics if AVX2+FMA are
/// unavailable. The tiled layer reaches this through
/// [`crate::engine::Avx2Exec1d`].
#[cfg(target_arch = "x86_64")]
pub fn tile_heat1d_avx2(
    a: &mut [f64],
    n: usize,
    kern: &JacobiKern1d,
    s: usize,
    scratch: &mut Scratch1d<4>,
) {
    assert!(
        tempora_simd::arch::avx2_available(),
        "AVX2+FMA not available on this CPU"
    );
    // SAFETY: availability asserted above.
    unsafe { imp::tile_avx2(a, n, kern, s, scratch) }
}

/// One GS-1D temporal tile with the AVX2 steady state; see
/// [`tile_heat1d_avx2`].
#[cfg(target_arch = "x86_64")]
pub fn tile_gs1d_avx2(
    a: &mut [f64],
    n: usize,
    kern: &GsKern1d,
    s: usize,
    scratch: &mut Scratch1d<4>,
) {
    assert!(
        tempora_simd::arch::avx2_available(),
        "AVX2+FMA not available on this CPU"
    );
    // SAFETY: availability asserted above.
    unsafe { imp::tile_gs_avx2(a, n, kern, s, scratch) }
}

/// Run `steps` Heat-1D time steps with the AVX2 steady state; panics if
/// AVX2+FMA are unavailable (use [`run_heat1d_auto`] for dispatch).
#[cfg(target_arch = "x86_64")]
pub fn run_heat1d_avx2(
    grid: &Grid1<f64>,
    kern: &JacobiKern1d,
    steps: usize,
    s: usize,
) -> Grid1<f64> {
    assert_eq!(grid.halo(), 1, "temporal engines use halo width 1");
    let mut g = grid.clone();
    let n = g.n();
    let mut scratch = Scratch1d::<4>::new(s);
    let a = g.data_mut();
    for _ in 0..steps / 4 {
        tile_heat1d_avx2(a, n, kern, s, &mut scratch);
    }
    for _ in 0..steps % 4 {
        t1d::scalar_step_inplace(a, n, kern);
    }
    g
}

/// Run `steps` GS-1D time steps with the AVX2 steady state; panics if
/// AVX2+FMA are unavailable (use [`crate::engine`] for dispatch).
#[cfg(target_arch = "x86_64")]
pub fn run_gs1d_avx2(grid: &Grid1<f64>, kern: &GsKern1d, steps: usize, s: usize) -> Grid1<f64> {
    assert_eq!(grid.halo(), 1, "temporal engines use halo width 1");
    let mut g = grid.clone();
    let n = g.n();
    let mut scratch = Scratch1d::<4>::new(s);
    let a = g.data_mut();
    for _ in 0..steps / 4 {
        tile_gs1d_avx2(a, n, kern, s, &mut scratch);
    }
    for _ in 0..steps % 4 {
        t1d::scalar_step_inplace(a, n, kern);
    }
    g
}

/// Run Heat-1D with the best available engine: the `std::arch` AVX2 path
/// on capable x86-64 CPUs, the portable pack engine elsewhere. Both are
/// bit-identical to the scalar reference.
///
/// Thin wrapper over [`crate::engine::run_heat1d`] with
/// [`crate::engine::Select::Auto`] (kept for API compatibility).
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` instead; this one-shot wrapper allocates scratch per call"
)]
pub fn run_heat1d_auto(
    grid: &Grid1<f64>,
    kern: &JacobiKern1d,
    steps: usize,
    s: usize,
) -> Grid1<f64> {
    // Justification: this deprecated wrapper forwards to the deprecated engine entry point.
    #[allow(deprecated)]
    crate::engine::run_heat1d(crate::engine::Select::Auto, grid, kern, steps, s).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_grid::{fill_random_1d, Boundary};
    use tempora_stencil::{reference, Gs1dCoeffs, Heat1dCoeffs};

    #[test]
    fn avx2_engine_matches_reference_bitwise() {
        if !tempora_simd::arch::avx2_available() {
            return;
        }
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        for &n in &[16usize, 63, 200, 1000] {
            for s in 2..=7 {
                for steps in [4usize, 8, 13] {
                    let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.4));
                    fill_random_1d(&mut g, (n + s + steps) as u64, -1.0, 1.0);
                    let ours = run_heat1d_avx2(&g, &kern, steps, s);
                    let gold = reference::heat1d(&g, c, steps);
                    assert!(
                        ours.interior_eq(&gold),
                        "n={n} s={s} steps={steps} {:?}",
                        ours.first_diff(&gold)
                    );
                }
            }
        }
    }

    #[test]
    fn gs1d_avx2_matches_reference_bitwise() {
        if !tempora_simd::arch::avx2_available() {
            return;
        }
        let c = Gs1dCoeffs::new(0.4, 0.35, 0.25);
        let kern = GsKern1d(c);
        for &n in &[16usize, 63, 200, 777] {
            for s in 2..=7 {
                for steps in [4usize, 8, 13] {
                    let mut g = Grid1::new(n, 1, Boundary::Dirichlet(-0.3));
                    fill_random_1d(&mut g, (2 * n + s + steps) as u64, -1.0, 1.0);
                    let ours = run_gs1d_avx2(&g, &kern, steps, s);
                    let gold = reference::gs1d(&g, c, steps);
                    assert!(
                        ours.interior_eq(&gold),
                        "n={n} s={s} steps={steps} {:?}",
                        ours.first_diff(&gold)
                    );
                }
            }
        }
        // Degenerate n < VL·s falls back to the portable tile.
        for n in 1..=15 {
            let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.1));
            fill_random_1d(&mut g, n as u64, -1.0, 1.0);
            let ours = run_gs1d_avx2(&g, &kern, 8, 4);
            let gold = reference::gs1d(&g, c, 8);
            assert!(ours.interior_eq(&gold), "n={n}");
        }
    }

    #[test]
    // Justification: exercises the deprecated auto-dispatch wrapper until its removal.
    #[allow(deprecated)]
    fn auto_dispatch_matches_portable() {
        let c = Heat1dCoeffs::new(0.3, 0.45, 0.25);
        let kern = JacobiKern1d(c);
        let mut g = Grid1::new(500, 1, Boundary::Dirichlet(-1.0));
        fill_random_1d(&mut g, 9, -1.0, 1.0);
        let auto = run_heat1d_auto(&g, &kern, 12, 7);
        let portable = t1d::run::<4, _>(&g, &kern, 12, 7);
        assert!(auto.interior_eq(&portable));
    }
}
