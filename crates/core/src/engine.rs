//! Unified engine dispatch: one place that decides, per workload, whether
//! the portable pack steady state or the hand-scheduled `std::arch` AVX2
//! steady state runs.
//!
//! The preferred entry point is the `tempora_plan` crate's
//! `Problem → PlanBuilder → Plan → Report` lifecycle, which resolves the
//! selection once per plan and reuses scratch across runs; the one-shot
//! `run_*` wrappers here are kept as `#[deprecated]` shims for one
//! release. Every entry point returns the result **and** the [`Engine`]
//! that actually executed, so callers (the bench harness in particular)
//! can report honestly which instruction mix was measured. The selection
//! policy is a three-valued [`Select`]:
//!
//! * [`Select::Auto`] (the default) — AVX2+FMA steady state whenever the
//!   CPU supports it and the workload has one, portable otherwise;
//! * [`Select::Portable`] — always the portable pack engine;
//! * [`Select::Avx2`] — require the AVX2 path (panics if the CPU lacks
//!   AVX2+FMA; workloads with no hand-scheduled variant still resolve to
//!   portable, reported as such).
//!
//! Every workload now has a hand-scheduled steady state: the f64 kernels
//! run at `vl = 4` double lanes, and the two integer workloads — Life
//! and LCS — at the paper's `vl = 8` i32 lanes. Degenerate shapes that
//! cannot exercise a vector steady state at all — fewer than one full
//! `vl`-level time tile, or an outer extent below `vl·s` (for LCS, a row
//! segment below `vl·s + 1`) — resolve portable, because every engine
//! would run the identical scalar schedule there and reporting `avx2`
//! would misname the instruction mix that actually executed.
//!
//! The selection is overridable at process level through the
//! `TEMPORA_ENGINE` environment variable (`auto` | `portable` | `avx2`,
//! read by [`Select::from_env`]); the `repro` harness records both the
//! selection and the per-series resolved engine in its JSON output.
//!
//! All engines are bit-identical to the scalar oracles, so dispatch never
//! changes results — only speed.

use crate::kernels::{
    BoxKern2d, GsKern1d, GsKern2d, GsKern3d, JacobiKern1d, JacobiKern2d, JacobiKern3d, LifeKern2d,
};
use crate::{lcs, t1d, t2d, t3d};
use tempora_grid::{Grid1, Grid2, Grid3};

/// Environment variable consulted by [`Select::from_env`].
pub const ENV_VAR: &str = "TEMPORA_ENGINE";

/// Engine-selection policy (see the [module docs](self)).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Select {
    /// Best available: AVX2 where supported and implemented, else portable.
    #[default]
    Auto,
    /// Force the portable pack engine.
    Portable,
    /// Require the `std::arch` AVX2 engine (panics without AVX2+FMA).
    Avx2,
}

impl Select {
    /// Parse a selection name (`auto` | `portable` | `avx2`,
    /// case-insensitive; the empty string means `auto`).
    pub fn parse(s: &str) -> Option<Select> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Some(Select::Auto),
            "portable" => Some(Select::Portable),
            "avx2" => Some(Select::Avx2),
            _ => None,
        }
    }

    /// Read the selection from the `TEMPORA_ENGINE` environment variable
    /// ([`Select::Auto`] when unset).
    ///
    /// # Panics
    /// Panics on an unrecognized value, so typos fail loudly instead of
    /// silently benchmarking the wrong engine.
    pub fn from_env() -> Select {
        match std::env::var(ENV_VAR) {
            Ok(v) => Select::parse(&v).unwrap_or_else(|| {
                panic!("{ENV_VAR}={v:?} not recognized (expected auto | portable | avx2)")
            }),
            Err(_) => Select::Auto,
        }
    }

    /// The canonical name of this selection (`auto` | `portable` | `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            Select::Auto => "auto",
            Select::Portable => "portable",
            Select::Avx2 => "avx2",
        }
    }

    /// Resolve the policy against CPU capability and whether the workload
    /// has a hand-scheduled AVX2 steady state. Public so the tiled layer
    /// (`tempora-tiling`) can resolve its in-tile engine **once per run**
    /// and report it honestly; degenerate geometries must pass
    /// `has_avx2_impl = false`.
    pub fn resolve(self, has_avx2_impl: bool) -> Engine {
        match self {
            Select::Portable => Engine::Portable,
            Select::Auto => {
                if has_avx2_impl && tempora_simd::arch::avx2_available() {
                    Engine::Avx2
                } else {
                    Engine::Portable
                }
            }
            Select::Avx2 => {
                assert!(
                    tempora_simd::arch::avx2_available(),
                    "{ENV_VAR}=avx2 requested but this CPU lacks AVX2+FMA"
                );
                if has_avx2_impl {
                    Engine::Avx2
                } else {
                    Engine::Portable
                }
            }
        }
    }
}

/// The concrete steady state a dispatch decision resolved to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The portable `Pack` engine (LLVM auto-selection).
    Portable,
    /// The hand-scheduled `std::arch` AVX2+FMA engine.
    Avx2,
}

impl Engine {
    /// The engine name as recorded in bench output (`portable` | `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Portable => "portable",
            Engine::Avx2 => "avx2",
        }
    }
}

/// True when a workload shape can actually exercise a vector steady
/// state at vector length `vl` (4 for the f64 kernels, 8 for the
/// integer Life kernel): at least one full `vl`-level time tile, and an
/// outer extent that hosts the vector schedule (`n ≥ vl·s`). Degenerate
/// shapes run the scalar schedule in *every* engine, so dispatch
/// resolves them portable — the returned [`Engine`] must name the
/// steady state that executes, not the one that was asked for.
pub fn shape_has_vector_tiles(vl: usize, n_outer: usize, steps: usize, s: usize) -> bool {
    steps >= vl && n_outer >= vl * s
}

/// Run Heat-1D (1D3P Jacobi) under `sel`; returns the final grid and the
/// engine that executed. The AVX2 ring is register-resident and capped at
/// stride [`crate::t1d_avx2::MAX_STRIDE`]; wider strides resolve portable.
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` instead; this one-shot wrapper allocates scratch per call"
)]
pub fn run_heat1d(
    sel: Select,
    grid: &Grid1<f64>,
    kern: &JacobiKern1d,
    steps: usize,
    s: usize,
) -> (Grid1<f64>, Engine) {
    run_heat1d_impl(sel, grid, kern, steps, s)
}

/// Shared Heat-1D dispatch body, so the deprecated shim and the
/// non-deprecated crate-root convenience (`temporal1d_jacobi`) cannot
/// drift apart.
pub(crate) fn run_heat1d_impl(
    sel: Select,
    grid: &Grid1<f64>,
    kern: &JacobiKern1d,
    steps: usize,
    s: usize,
) -> (Grid1<f64>, Engine) {
    let has_impl = JacobiKern1d::avx2_tile(s) && shape_has_vector_tiles(4, grid.n(), steps, s);
    match sel.resolve(has_impl) {
        #[cfg(target_arch = "x86_64")]
        Engine::Avx2 => (
            crate::t1d_avx2::run_heat1d_avx2(grid, kern, steps, s),
            Engine::Avx2,
        ),
        #[cfg(not(target_arch = "x86_64"))]
        Engine::Avx2 => unreachable!("AVX2 resolved on a non-x86-64 target"),
        Engine::Portable => (t1d::run::<4, _>(grid, kern, steps, s), Engine::Portable),
    }
}

/// Run GS-1D (1D3P Gauss-Seidel) under `sel`; returns the final grid and
/// the engine that executed.
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` instead; this one-shot wrapper allocates scratch per call"
)]
pub fn run_gs1d(
    sel: Select,
    grid: &Grid1<f64>,
    kern: &GsKern1d,
    steps: usize,
    s: usize,
) -> (Grid1<f64>, Engine) {
    run_gs1d_impl(sel, grid, kern, steps, s)
}

/// Shared GS-1D dispatch body (see [`run_heat1d_impl`]).
pub(crate) fn run_gs1d_impl(
    sel: Select,
    grid: &Grid1<f64>,
    kern: &GsKern1d,
    steps: usize,
    s: usize,
) -> (Grid1<f64>, Engine) {
    let has_impl = GsKern1d::avx2_tile(s) && shape_has_vector_tiles(4, grid.n(), steps, s);
    match sel.resolve(has_impl) {
        #[cfg(target_arch = "x86_64")]
        Engine::Avx2 => (
            crate::t1d_avx2::run_gs1d_avx2(grid, kern, steps, s),
            Engine::Avx2,
        ),
        #[cfg(not(target_arch = "x86_64"))]
        Engine::Avx2 => unreachable!("AVX2 resolved on a non-x86-64 target"),
        Engine::Portable => (t1d::run::<4, _>(grid, kern, steps, s), Engine::Portable),
    }
}

/// Run Heat-2D (2D5P Jacobi) under `sel`; returns the final grid and the
/// engine that executed.
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` instead; this one-shot wrapper allocates scratch per call"
)]
pub fn run_heat2d(
    sel: Select,
    grid: &Grid2<f64>,
    kern: &JacobiKern2d,
    steps: usize,
    s: usize,
) -> (Grid2<f64>, Engine) {
    match sel.resolve(shape_has_vector_tiles(4, grid.nx(), steps, s)) {
        #[cfg(target_arch = "x86_64")]
        Engine::Avx2 => (
            crate::t2d_avx2::run_heat2d_avx2(grid, kern, steps, s),
            Engine::Avx2,
        ),
        #[cfg(not(target_arch = "x86_64"))]
        Engine::Avx2 => unreachable!("AVX2 resolved on a non-x86-64 target"),
        Engine::Portable => (
            t2d::run::<f64, 4, _>(grid, kern, steps, s),
            Engine::Portable,
        ),
    }
}

/// Run 2D9P (box Jacobi) under `sel`; returns the final grid and the
/// engine that executed.
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` instead; this one-shot wrapper allocates scratch per call"
)]
pub fn run_box2d(
    sel: Select,
    grid: &Grid2<f64>,
    kern: &BoxKern2d,
    steps: usize,
    s: usize,
) -> (Grid2<f64>, Engine) {
    match sel.resolve(shape_has_vector_tiles(4, grid.nx(), steps, s)) {
        #[cfg(target_arch = "x86_64")]
        Engine::Avx2 => (
            crate::t2d_avx2::run_box2d_avx2(grid, kern, steps, s),
            Engine::Avx2,
        ),
        #[cfg(not(target_arch = "x86_64"))]
        Engine::Avx2 => unreachable!("AVX2 resolved on a non-x86-64 target"),
        Engine::Portable => (
            t2d::run::<f64, 4, _>(grid, kern, steps, s),
            Engine::Portable,
        ),
    }
}

/// Run GS-2D (2D5P Gauss-Seidel) under `sel`; returns the final grid and
/// the engine that executed.
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` instead; this one-shot wrapper allocates scratch per call"
)]
pub fn run_gs2d(
    sel: Select,
    grid: &Grid2<f64>,
    kern: &GsKern2d,
    steps: usize,
    s: usize,
) -> (Grid2<f64>, Engine) {
    match sel.resolve(shape_has_vector_tiles(4, grid.nx(), steps, s)) {
        #[cfg(target_arch = "x86_64")]
        Engine::Avx2 => (
            crate::t2d_avx2::run_gs2d_avx2(grid, kern, steps, s),
            Engine::Avx2,
        ),
        #[cfg(not(target_arch = "x86_64"))]
        Engine::Avx2 => unreachable!("AVX2 resolved on a non-x86-64 target"),
        Engine::Portable => (
            t2d::run::<f64, 4, _>(grid, kern, steps, s),
            Engine::Portable,
        ),
    }
}

/// Run Game-of-Life (integer 2D9P, 8 lanes) under `sel`; returns the
/// final grid and the engine that executed. The AVX2 integer steady
/// state runs at `vl = 8` i32 lanes, so the degenerate bounds are
/// `steps ≥ 8` whole tiles and `nx ≥ 8·s`; smaller shapes resolve
/// portable because every engine runs the identical scalar schedule
/// there.
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` instead; this one-shot wrapper allocates scratch per call"
)]
pub fn run_life(
    sel: Select,
    grid: &Grid2<i32>,
    kern: &LifeKern2d,
    steps: usize,
    s: usize,
) -> (Grid2<i32>, Engine) {
    let has_impl = <LifeKern2d as Avx2Exec2d<i32>>::avx2_tile(8, s)
        && shape_has_vector_tiles(8, grid.nx(), steps, s);
    match sel.resolve(has_impl) {
        #[cfg(target_arch = "x86_64")]
        Engine::Avx2 => (
            crate::t2d_avx2::run_life2d_avx2(grid, kern, steps, s),
            Engine::Avx2,
        ),
        #[cfg(not(target_arch = "x86_64"))]
        Engine::Avx2 => unreachable!("AVX2 resolved on a non-x86-64 target"),
        Engine::Portable => (
            t2d::run::<i32, 8, _>(grid, kern, steps, s),
            Engine::Portable,
        ),
    }
}

/// Run Heat-3D (3D7P Jacobi) under `sel`; returns the final grid and the
/// engine that executed.
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` instead; this one-shot wrapper allocates scratch per call"
)]
pub fn run_heat3d(
    sel: Select,
    grid: &Grid3<f64>,
    kern: &JacobiKern3d,
    steps: usize,
    s: usize,
) -> (Grid3<f64>, Engine) {
    match sel.resolve(shape_has_vector_tiles(4, grid.nx(), steps, s)) {
        #[cfg(target_arch = "x86_64")]
        Engine::Avx2 => (
            crate::t3d_avx2::run_heat3d_avx2(grid, kern, steps, s),
            Engine::Avx2,
        ),
        #[cfg(not(target_arch = "x86_64"))]
        Engine::Avx2 => unreachable!("AVX2 resolved on a non-x86-64 target"),
        Engine::Portable => (
            t3d::run::<f64, 4, _>(grid, kern, steps, s),
            Engine::Portable,
        ),
    }
}

/// Run GS-3D (3D7P Gauss-Seidel) under `sel`; returns the final grid and
/// the engine that executed.
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` instead; this one-shot wrapper allocates scratch per call"
)]
pub fn run_gs3d(
    sel: Select,
    grid: &Grid3<f64>,
    kern: &GsKern3d,
    steps: usize,
    s: usize,
) -> (Grid3<f64>, Engine) {
    match sel.resolve(shape_has_vector_tiles(4, grid.nx(), steps, s)) {
        #[cfg(target_arch = "x86_64")]
        Engine::Avx2 => (
            crate::t3d_avx2::run_gs3d_avx2(grid, kern, steps, s),
            Engine::Avx2,
        ),
        #[cfg(not(target_arch = "x86_64"))]
        Engine::Avx2 => unreachable!("AVX2 resolved on a non-x86-64 target"),
        Engine::Portable => (
            t3d::run::<f64, 4, _>(grid, kern, steps, s),
            Engine::Portable,
        ),
    }
}

/// Run the LCS length DP under `sel`; returns the length and the engine
/// that executed. The `i32×8` AVX2 steady state requires at least one
/// full 8-level `A` tile and a row segment hosting the vector schedule
/// (`lb ≥ 8·s + 1`, see [`crate::lcs_avx2::seq_has_vector_tiles`]);
/// degenerate shapes resolve portable.
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` instead; this one-shot wrapper allocates scratch per call"
)]
pub fn run_lcs(sel: Select, a: &[u8], b: &[u8], s: usize) -> (i32, Engine) {
    let has_impl = crate::lcs_avx2::seq_has_vector_tiles(a.len(), b.len(), s);
    match sel.resolve(has_impl) {
        #[cfg(target_arch = "x86_64")]
        Engine::Avx2 => (crate::lcs_avx2::length_avx2(a, b, s), Engine::Avx2),
        #[cfg(not(target_arch = "x86_64"))]
        Engine::Avx2 => unreachable!("AVX2 resolved on a non-x86-64 target"),
        Engine::Portable => (lcs::length(a, b, s), Engine::Portable),
    }
}

// ---------------------------------------------------------------------
// Per-kernel AVX2 executor hooks for the tiled / parallel layer
// ---------------------------------------------------------------------

use crate::kernels::{Kernel1d, Kernel2d, Kernel3d};
use crate::t1d::Scratch1d;
use crate::t1d_band::MAX_BAND_STRIDE;
use crate::t2d::Scratch2d;
use crate::t2d_band::BandScratch2d;
use crate::t3d::Scratch3d;
use crate::t3d_band::BandScratch3d;
use tempora_simd::Scalar;

/// Hand-scheduled AVX2 executors a 1-D kernel exposes to the tiled layer
/// (`tempora-tiling`): one temporal tile for the ghost-zone Jacobi
/// runners, one skewed band for the parallelogram Gauss-Seidel runners.
/// Kernels without a hand-scheduled steady state keep the defaults (no
/// AVX2 path) and the tiled runners resolve their [`Select`] to the
/// portable engine. The `avx2_*` availability checks fold in the CPU
/// feature test, so a `true` return is a licence to call the executor.
pub trait Avx2Exec1d: Kernel1d {
    /// True when this kernel has a hand-scheduled AVX2 temporal tile at
    /// stride `s` and the CPU supports AVX2+FMA.
    fn avx2_tile(s: usize) -> bool {
        let _ = s;
        false
    }

    /// Advance one `VL = 4` temporal tile with the AVX2 steady state
    /// (bit-identical to `t1d::tile`). Only callable when
    /// [`Avx2Exec1d::avx2_tile`] returned true.
    fn tile_avx2(&self, a: &mut [f64], n: usize, s: usize, scratch: &mut Scratch1d<4>) {
        let _ = (a, n, s, scratch);
        unreachable!("kernel has no AVX2 temporal tile");
    }

    /// True when this kernel has a hand-scheduled AVX2 skewed-band
    /// executor at stride `s` and the CPU supports AVX2+FMA.
    fn avx2_band(s: usize) -> bool {
        let _ = s;
        false
    }

    /// Execute one skewed band with the AVX2 steady state (bit-identical
    /// to `t1d_band::band_temporal_gs`). Only callable when
    /// [`Avx2Exec1d::avx2_band`] returned true.
    fn band_avx2(&self, a: &mut [f64], xl: usize, xr: usize, n: usize, s: usize) {
        let _ = (a, xl, xr, n, s);
        unreachable!("kernel has no AVX2 band executor");
    }
}

impl Avx2Exec1d for JacobiKern1d {
    fn avx2_tile(s: usize) -> bool {
        s <= crate::t1d_avx2::MAX_STRIDE && tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn tile_avx2(&self, a: &mut [f64], n: usize, s: usize, scratch: &mut Scratch1d<4>) {
        crate::t1d_avx2::tile_heat1d_avx2(a, n, self, s, scratch);
    }
}

impl Avx2Exec1d for GsKern1d {
    fn avx2_tile(s: usize) -> bool {
        s <= crate::t1d_avx2::MAX_STRIDE && tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn tile_avx2(&self, a: &mut [f64], n: usize, s: usize, scratch: &mut Scratch1d<4>) {
        crate::t1d_avx2::tile_gs1d_avx2(a, n, self, s, scratch);
    }

    fn avx2_band(s: usize) -> bool {
        s <= MAX_BAND_STRIDE && tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn band_avx2(&self, a: &mut [f64], xl: usize, xr: usize, n: usize, s: usize) {
        crate::t1d_band::band_temporal_gs_avx2(a, xl, xr, n, s, self);
    }
}

/// Downcast a generic 2-D temporal scratch to the lane count an AVX2
/// steady state is pinned to. The `avx2_tile(vl, s)` capability check
/// guarantees the runner's lane count equals the steady state's, so the
/// downcast can only fail on a dispatch bug — and then it fails loudly.
fn scratch_at<T: Scalar, const VL: usize, const W: usize>(
    sc: &mut Scratch2d<T, VL>,
) -> &mut Scratch2d<T, W> {
    (sc as &mut dyn core::any::Any)
        .downcast_mut::<Scratch2d<T, W>>()
        // Panic-justification: `avx2_tile` only dispatches here when
        // VL == W, so a failed downcast is a dispatch-table bug that must
        // fail loudly rather than corrupt the tile.
        .expect("AVX2 steady state invoked at a lane count its avx2_tile check rejected")
}

/// Hand-scheduled AVX2 executors a 2-D kernel exposes to the tiled layer;
/// see [`Avx2Exec1d`]. Each steady state is pinned to one `__m256`
/// register width — `vl = 4` f64 lanes for the floating-point kernels,
/// `vl = 8` i32 lanes for the integer Life kernel — so `avx2_tile` takes
/// the vector length the caller runs at and `tile_avx2` accepts the
/// caller's scratch generically (a `true` capability check guarantees
/// the lane counts match).
pub trait Avx2Exec2d<T: Scalar>: Kernel2d<T> {
    /// True when this kernel has a hand-scheduled AVX2 temporal tile at
    /// vector length `vl` and stride `s` and the CPU supports AVX2+FMA.
    fn avx2_tile(vl: usize, s: usize) -> bool {
        let _ = (vl, s);
        false
    }

    /// Advance one `VL`-level temporal tile with the AVX2 steady state
    /// (bit-identical to `t2d::tile`). Only callable when
    /// [`Avx2Exec2d::avx2_tile`] returned true for this `VL`.
    fn tile_avx2<const VL: usize>(&self, g: &mut Grid2<T>, s: usize, sc: &mut Scratch2d<T, VL>) {
        let _ = (g, s, sc);
        unreachable!("kernel has no AVX2 temporal tile");
    }

    /// True when this kernel has a hand-scheduled AVX2 skewed-band
    /// executor at stride `s` and the CPU supports AVX2+FMA.
    fn avx2_band(s: usize) -> bool {
        let _ = s;
        false
    }

    /// Execute one skewed band with the AVX2 steady state (bit-identical
    /// to `t2d_band::band_temporal_gs2d`). Only callable when
    /// [`Avx2Exec2d::avx2_band`] returned true.
    fn band_avx2(
        &self,
        g: &mut Grid2<T>,
        xl: usize,
        xr: usize,
        s: usize,
        sc: &mut BandScratch2d<4>,
    ) {
        let _ = (g, xl, xr, s, sc);
        unreachable!("kernel has no AVX2 band executor");
    }
}

impl Avx2Exec2d<f64> for JacobiKern2d {
    fn avx2_tile(vl: usize, _s: usize) -> bool {
        vl == 4 && tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn tile_avx2<const VL: usize>(
        &self,
        g: &mut Grid2<f64>,
        s: usize,
        sc: &mut Scratch2d<f64, VL>,
    ) {
        crate::t2d_avx2::tile_heat2d_avx2(g, self, s, scratch_at::<f64, VL, 4>(sc));
    }
}

impl Avx2Exec2d<f64> for BoxKern2d {
    fn avx2_tile(vl: usize, _s: usize) -> bool {
        vl == 4 && tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn tile_avx2<const VL: usize>(
        &self,
        g: &mut Grid2<f64>,
        s: usize,
        sc: &mut Scratch2d<f64, VL>,
    ) {
        crate::t2d_avx2::tile_box2d_avx2(g, self, s, scratch_at::<f64, VL, 4>(sc));
    }
}

impl Avx2Exec2d<f64> for GsKern2d {
    fn avx2_tile(vl: usize, _s: usize) -> bool {
        vl == 4 && tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn tile_avx2<const VL: usize>(
        &self,
        g: &mut Grid2<f64>,
        s: usize,
        sc: &mut Scratch2d<f64, VL>,
    ) {
        crate::t2d_avx2::tile_gs2d_avx2(g, self, s, scratch_at::<f64, VL, 4>(sc));
    }

    fn avx2_band(_s: usize) -> bool {
        tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn band_avx2(
        &self,
        g: &mut Grid2<f64>,
        xl: usize,
        xr: usize,
        s: usize,
        sc: &mut BandScratch2d<4>,
    ) {
        crate::t2d_band::band_temporal_gs2d_avx2(g, xl, xr, s, self, sc);
    }
}

/// The integer Life steady state runs at `vl = 8` i32 lanes (one full
/// `__m256i`), matching the portable Life engine's lane count, so the
/// tiled runners dispatch it exactly like the f64 kernels.
impl Avx2Exec2d<i32> for LifeKern2d {
    fn avx2_tile(vl: usize, _s: usize) -> bool {
        vl == 8 && tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn tile_avx2<const VL: usize>(
        &self,
        g: &mut Grid2<i32>,
        s: usize,
        sc: &mut Scratch2d<i32, VL>,
    ) {
        crate::t2d_avx2::tile_life2d_avx2(g, self, s, scratch_at::<i32, VL, 8>(sc));
    }
}

/// Hand-scheduled AVX2 executors a 3-D kernel exposes to the tiled layer;
/// see [`Avx2Exec1d`].
pub trait Avx2Exec3d: Kernel3d<f64> {
    /// True when this kernel has a hand-scheduled AVX2 temporal tile at
    /// stride `s` and the CPU supports AVX2+FMA.
    fn avx2_tile(s: usize) -> bool {
        let _ = s;
        false
    }

    /// Advance one `VL = 4` temporal tile with the AVX2 steady state
    /// (bit-identical to `t3d::tile`). Only callable when
    /// [`Avx2Exec3d::avx2_tile`] returned true.
    fn tile_avx2(&self, g: &mut Grid3<f64>, s: usize, sc: &mut Scratch3d<f64, 4>) {
        let _ = (g, s, sc);
        unreachable!("kernel has no AVX2 temporal tile");
    }

    /// True when this kernel has a hand-scheduled AVX2 skewed-band
    /// executor at stride `s` and the CPU supports AVX2+FMA.
    fn avx2_band(s: usize) -> bool {
        let _ = s;
        false
    }

    /// Execute one skewed band with the AVX2 steady state (bit-identical
    /// to `t3d_band::band_temporal_gs3d`). Only callable when
    /// [`Avx2Exec3d::avx2_band`] returned true.
    fn band_avx2(
        &self,
        g: &mut Grid3<f64>,
        xl: usize,
        xr: usize,
        s: usize,
        sc: &mut BandScratch3d<4>,
    ) {
        let _ = (g, xl, xr, s, sc);
        unreachable!("kernel has no AVX2 band executor");
    }
}

impl Avx2Exec3d for JacobiKern3d {
    fn avx2_tile(_s: usize) -> bool {
        tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn tile_avx2(&self, g: &mut Grid3<f64>, s: usize, sc: &mut Scratch3d<f64, 4>) {
        crate::t3d_avx2::tile_heat3d_avx2(g, self, s, sc);
    }
}

impl Avx2Exec3d for GsKern3d {
    fn avx2_tile(_s: usize) -> bool {
        tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn tile_avx2(&self, g: &mut Grid3<f64>, s: usize, sc: &mut Scratch3d<f64, 4>) {
        crate::t3d_avx2::tile_gs3d_avx2(g, self, s, sc);
    }

    fn avx2_band(_s: usize) -> bool {
        tempora_simd::arch::avx2_available()
    }

    #[cfg(target_arch = "x86_64")]
    fn band_avx2(
        &self,
        g: &mut Grid3<f64>,
        xl: usize,
        xr: usize,
        s: usize,
        sc: &mut BandScratch3d<4>,
    ) {
        crate::t3d_band::band_temporal_gs3d_avx2(g, xl, xr, s, self, sc);
    }
}

#[cfg(test)]
// Justification: these tests pin the deprecated one-shot wrappers' behavior until their removal.
#[allow(deprecated)]
mod tests {
    use super::*;
    use tempora_grid::{fill_random_1d, Boundary};
    use tempora_stencil::{reference, Heat1dCoeffs};

    #[test]
    fn select_parses_all_names() {
        assert_eq!(Select::parse("auto"), Some(Select::Auto));
        assert_eq!(Select::parse(""), Some(Select::Auto));
        assert_eq!(Select::parse("Portable"), Some(Select::Portable));
        assert_eq!(Select::parse(" AVX2 "), Some(Select::Avx2));
        assert_eq!(Select::parse("sse"), None);
        for sel in [Select::Auto, Select::Portable, Select::Avx2] {
            assert_eq!(Select::parse(sel.name()), Some(sel));
        }
    }

    #[test]
    fn portable_selection_always_reports_portable() {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let mut g = Grid1::new(200, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 1, -1.0, 1.0);
        let (r, e) = run_heat1d(Select::Portable, &g, &kern, 8, 7);
        assert_eq!(e, Engine::Portable);
        assert!(r.interior_eq(&reference::heat1d(&g, c, 8)));
    }

    #[test]
    fn auto_matches_portable_bitwise() {
        let c = Heat1dCoeffs::new(0.3, 0.45, 0.25);
        let kern = JacobiKern1d(c);
        let mut g = Grid1::new(500, 1, Boundary::Dirichlet(-1.0));
        fill_random_1d(&mut g, 9, -1.0, 1.0);
        let (auto, _) = run_heat1d(Select::Auto, &g, &kern, 12, 7);
        let (port, _) = run_heat1d(Select::Portable, &g, &kern, 12, 7);
        assert!(auto.interior_eq(&port));
    }

    #[test]
    fn degenerate_shapes_resolve_portable() {
        // Shapes whose every step runs the scalar schedule must report
        // the portable engine, whatever the selection policy — on these
        // shapes no AVX2 steady-state instruction ever executes.
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let mut small = Grid1::new(5, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut small, 4, -1.0, 1.0);
        let mut big = Grid1::new(200, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut big, 5, -1.0, 1.0);
        for sel in [Select::Auto, Select::Portable] {
            // n = 5 < VL·s = 8: no vector tile fits.
            let (r, e) = run_heat1d(sel, &small, &kern, 8, 2);
            assert_eq!(e, Engine::Portable, "{sel:?}");
            assert!(r.interior_eq(&reference::heat1d(&small, c, 8)));
            // steps = 3 < VL: only scalar remainder steps run.
            let (r, e) = run_heat1d(sel, &big, &kern, 3, 2);
            assert_eq!(e, Engine::Portable, "{sel:?}");
            assert!(r.interior_eq(&reference::heat1d(&big, c, 3)));
        }
        let c2 = tempora_stencil::Heat2dCoeffs::classic(0.12);
        let k2 = JacobiKern2d(c2);
        let mut g2 = tempora_grid::Grid2::new(5, 9, 1, Boundary::Dirichlet(0.0));
        tempora_grid::fill_random_2d(&mut g2, 6, -1.0, 1.0);
        let (r, e) = run_heat2d(Select::Auto, &g2, &k2, 8, 2);
        assert_eq!(e, Engine::Portable);
        assert!(r.interior_eq(&tempora_stencil::reference::heat2d(&g2, c2, 8)));
    }

    #[test]
    fn workloads_without_avx2_impl_resolve_portable() {
        // Stride beyond the 1-D register-ring cap must resolve portable
        // even under Auto on an AVX2 host.
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let mut g = Grid1::new(4096, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 2, -1.0, 1.0);
        let wide = crate::t1d_avx2::MAX_STRIDE + 1;
        let (r, e) = run_heat1d(Select::Auto, &g, &kern, 4, wide);
        assert_eq!(e, Engine::Portable);
        assert!(r.interior_eq(&reference::heat1d(&g, c, 4)));
    }
}
