//! Temporal vectorization of the LCS dynamic program (paper §3.4).
//!
//! LCS is the paper's demonstration that temporal vectorization extends
//! beyond PDE stencils to dynamic-programming wavefronts. With the `x`
//! loop (sequence `A`) viewed as *time* and the `y` loop (sequence `B`)
//! as *space*, the recurrence
//!
//! ```text
//! lcs[x][y] = if A[x] == B[y] { lcs[x-1][y-1] + 1 }
//!             else            { max(lcs[x-1][y], lcs[x][y-1]) }
//! ```
//!
//! is a 1-D Gauss-Seidel stencil whose only same-time dependence is the
//! west neighbour — so the minimum temporal stride is `s = 1` (no old
//! east neighbour exists, unlike the 3-point stencils). One vector packs
//! `VL = 8` consecutive `A`-positions (`i32` lanes); per inner iteration
//! the kernel needs
//!
//! * `diag` = `V(y-1)`, `up` = `V(y)` (input-vector ring),
//! * `left` = `O(y-1)` (previous output vector — the Gauss-Seidel rule),
//! * the character equality mask: lane `i` compares `A[x0+1+i]` (a
//!   per-tile constant vector) against `B[y + (VL-1-i)·s]` (a strided
//!   gather acting as the paper's "variable coefficient"),
//!
//! and produces `O(y) = select(eq, diag + 1, max(up, left))` — the
//! paper's "blend instruction with a mask vector of equalities". The
//! sweep state is a single rolling row (the paper's `lcsA`/`lcsB`
//! wavefront arrays), updated in place.
//!
//! For the paper's rectangle tiling ("LCS allows the rectangle tiling in
//! the iteration space"), [`tile_seg`] runs the same schedule on a row
//! *segment*, importing the per-level west values of the neighbouring
//! block as a column vector and exporting its own east column.

use tempora_simd::Pack;
use tempora_stencil::lcs_update;

/// Scratch for the LCS engine (head/tail wavefront triangles).
pub struct ScratchLcs<const VL: usize> {
    pub(crate) head: Vec<Vec<i32>>,
    pub(crate) tail: Vec<Vec<i32>>,
    pub(crate) ring: Vec<Pack<i32, VL>>,
}

impl<const VL: usize> ScratchLcs<VL> {
    /// Allocate scratch for stride `s`.
    pub fn new(s: usize) -> Self {
        ScratchLcs {
            head: (0..VL).map(|k| vec![0; (VL - k) * s + 2]).collect(),
            tail: (0..VL).map(|i| vec![0; (i + 1) * s + 2]).collect(),
            ring: vec![Pack::splat(0); s + 2],
        }
    }
}

/// One scalar DP row step over the segment `y ∈ [y0, y1]` (1-based).
///
/// `west` supplies the newest west value `lcs[x][y0-1]` and `nw` the
/// diagonal `lcs[x-1][y0-1]` — both must be passed explicitly because at
/// a block boundary `row[y0-1]` already holds a *newer* level than the
/// one this step consumes.
pub fn scalar_row_step_seg(
    row: &mut [i32],
    ca: u8,
    b: &[u8],
    y0: usize,
    y1: usize,
    west: i32,
    nw: i32,
) {
    let mut diag = nw;
    let mut west = west;
    for y in y0..=y1 {
        let up = row[y];
        let v = lcs_update(diag, up, west, ca, b[y - 1]);
        row[y] = v;
        west = v;
        diag = up;
    }
}

/// Advance the DP rows by `VL` sequence-`A` positions over the column
/// segment `[y0, y1]` (one temporal tile of one rectangle block).
///
/// * `row` holds `lcs[x0][·]` on the segment on entry, `lcs[x0+VL][·]` on
///   exit (positions outside the segment are not touched);
/// * `a_tile` = `A[x0+1 ..= x0+VL]`; `b` is the full second sequence;
/// * `left_col[k]` = `lcs[x0+k][y0-1]` for `k ∈ 0..=VL` (all zeros when
///   the segment starts at column 1);
/// * on return `right_col[k]` = `lcs[x0+k][y1]`.
///
/// The tile is the composition of the phases exposed below —
/// [`tile_seg_fallback_if_degenerate`], [`tile_seg_prologue`],
/// [`tile_seg_steady`], [`tile_seg_epilogue`] — so that arch-specialized
/// steady states (see `lcs_avx2`) can swap the middle phase while sharing
/// the exact head/tail wavefront-triangle machinery.
// Justification: the parameter list is the tile contract itself (row, columns, bounds, shift); bundling it would hide what each kernel stage touches.
#[allow(clippy::too_many_arguments)]
pub fn tile_seg<const VL: usize>(
    row: &mut [i32],
    y0: usize,
    y1: usize,
    a_tile: &[u8],
    b: &[u8],
    s: usize,
    left_col: &[i32],
    right_col: &mut [i32],
    sc: &mut ScratchLcs<VL>,
) {
    if tile_seg_fallback_if_degenerate::<VL>(row, y0, y1, a_tile, b, s, left_col, right_col) {
        return;
    }
    let (y_max, o_prev) = tile_seg_prologue::<VL>(row, y0, y1, a_tile, b, s, left_col, sc);
    tile_seg_steady::<VL>(row, y0, y_max, a_tile, b, s, sc, o_prev);
    tile_seg_epilogue::<VL>(row, y1, a_tile, b, s, right_col, sc, y_max);
}

/// Shared degenerate-segment guard: when the segment cannot host the
/// vector schedule (`seg < VL·s + 1`), run the `VL` levels with scalar
/// row steps instead (same results, `right_col` fully exported) and
/// report `true`. Also validates the shared tile contract.
// Justification: same tile-contract signature as `tile_seg`.
#[allow(clippy::too_many_arguments)]
pub fn tile_seg_fallback_if_degenerate<const VL: usize>(
    row: &mut [i32],
    y0: usize,
    y1: usize,
    a_tile: &[u8],
    b: &[u8],
    s: usize,
    left_col: &[i32],
    right_col: &mut [i32],
) -> bool {
    assert!(s >= 1);
    assert_eq!(a_tile.len(), VL);
    assert!(left_col.len() > VL && right_col.len() > VL);
    debug_assert!(y0 >= 1 && y1 >= y0 && y1 < row.len());
    right_col[0] = row[y1];
    if y1 + 1 - y0 > VL * s {
        return false;
    }
    for (k, &ca) in a_tile.iter().enumerate() {
        scalar_row_step_seg(row, ca, b, y0, y1, left_col[k + 1], left_col[k]);
        right_col[k + 1] = row[y1];
    }
    true
}

/// Phase 1 of an LCS temporal tile: scalar head wavefront triangles for
/// levels `1..VL`, the initial input-vector ring `V(y0-1) ..= V(y0-1+s)`
/// and the initial output vector `O(y0-1)`. Returns `(y_max, o_prev)` —
/// the last steady anchor column and the output vector the steady state
/// starts from. The segment must not be degenerate (see
/// [`tile_seg_fallback_if_degenerate`]).
// Justification: same tile-contract signature as `tile_seg`.
#[allow(clippy::too_many_arguments)]
pub fn tile_seg_prologue<const VL: usize>(
    row: &mut [i32],
    y0: usize,
    y1: usize,
    a_tile: &[u8],
    b: &[u8],
    s: usize,
    left_col: &[i32],
    sc: &mut ScratchLcs<VL>,
) -> (usize, Pack<i32, VL>) {
    let seg = y1 + 1 - y0;
    assert!(seg > VL * s, "degenerate segment: call the fallback");
    let y_max = y1 - VL * s; // last steady anchor (absolute column)

    // Prologue: head[k][j] = lcs[x0+k][y0-1+j] for j ∈ 0..=(VL-k)·s.
    for k in 1..VL {
        let hi = (VL - k) * s;
        let (lo, hi_planes) = sc.head.split_at_mut(k);
        let plane = &mut hi_planes[0];
        plane[0] = left_col[k];
        let ca = a_tile[k - 1];
        for j in 1..=hi {
            let y = y0 - 1 + j;
            let (diag, up) = if k == 1 {
                // At the segment edge row[y0-1] already holds a newer
                // level; the true level-0 diagonal is left_col[0].
                let d = if j == 1 { left_col[0] } else { row[y - 1] };
                (d, row[y])
            } else {
                (lo[k - 1][j - 1], lo[k - 1][j])
            };
            plane[j] = lcs_update(diag, up, plane[j - 1], ca, b[y - 1]);
        }
    }

    // Initial ring V(y0-1) ..= V(y0-1+s): lane i = lcs[x0+i][y+(VL-1-i)·s]
    // (the anchor one left of the first steady iteration, as in
    // Algorithm 3 lines 5-7).
    let rlen = s + 1;
    for jj in 0..=s {
        let y = y0 - 1 + jj;
        let head = &sc.head;
        sc.ring[y % rlen] = Pack::from_fn(|i| {
            let yy = y + (VL - 1 - i) * s;
            if i == 0 {
                row[yy]
            } else {
                head[i][yy - (y0 - 1)]
            }
        });
    }
    // O(y0-1): lane i = lcs[x0+1+i][y0-1 + (VL-1-i)·s].
    let o_prev = Pack::<i32, VL>::from_fn(|i| {
        let j = (VL - 1 - i) * s;
        if i == VL - 1 {
            left_col[VL]
        } else {
            sc.head[i + 1][j]
        }
    });
    (y_max, o_prev)
}

/// Phase 2 of an LCS temporal tile (portable): the §3.4 steady state
/// `O(y) = select(eq, diag + 1, max(up, left))` over the anchors
/// `y ∈ [y0, y_max]`. `(y_max, o_prev)` must come from
/// [`tile_seg_prologue`].
///
/// The loop keeps the ring traffic at one read and one write per
/// iteration: the write at column `y` lands in the very slot the
/// diagonal operand was read from (`y+s ≡ y-1 mod s+1`), so `diag` is
/// simply the previous iteration's `up` vector, carried in a register.
/// At the minimum stride `s = 1` the character vector `B` advances by
/// one column per iteration and is produced by the same
/// rotate-and-blend rule as the input vectors — no per-iteration gather
/// remains in the hot loop.
// Justification: same tile-contract signature as `tile_seg`.
#[allow(clippy::too_many_arguments)]
pub fn tile_seg_steady<const VL: usize>(
    row: &mut [i32],
    y0: usize,
    y_max: usize,
    a_tile: &[u8],
    b: &[u8],
    s: usize,
    sc: &mut ScratchLcs<VL>,
    mut o_prev: Pack<i32, VL>,
) {
    let rlen = s + 1;
    // Per-tile constant: lane i compares against A[x0+1+i].
    let a_pack = Pack::<i32, VL>::from_fn(|i| a_tile[i] as i32);
    // One fused lane function instead of eq_mask + select: the compare,
    // the sign-extended mask and the blend stay in a single lane-parallel
    // expression (`mask = -(a==b); (diag+1 & mask) | (max & !mask)`),
    // which LLVM lowers to compare/blend vector code without
    // materializing the `[bool; VL]` mask array — bit-identical to
    // `lcs_update_pack` (see `fused_update_matches_lcs_update_pack`).
    let fused = |diag: Pack<i32, VL>, up: Pack<i32, VL>, left: Pack<i32, VL>, bv: Pack<i32, VL>| {
        Pack::<i32, VL>::from_fn(|i| {
            let mask = -((a_pack.0[i] == bv.0[i]) as i32);
            (diag.0[i].wrapping_add(1) & mask) | (up.0[i].max(left.0[i]) & !mask)
        })
    };
    let mut diag = sc.ring[(y0 + rlen - 1) % rlen];
    let mut iu = y0 % rlen;
    let mut iw = (y0 + s) % rlen;
    if s == 1 {
        let mut b_pack = Pack::<i32, VL>::from_fn(|i| b[y0 - 1 + (VL - 1 - i)] as i32);
        for y in y0..=y_max {
            let up = sc.ring[iu];
            let o = fused(diag, up, o_prev, b_pack);
            row[y] = o.top();
            let bottom = row[y + VL];
            sc.ring[iw] = o.shift_up_insert(bottom);
            o_prev = o;
            diag = up;
            b_pack = b_pack.shift_up_insert(b[y + VL - 1] as i32);
            iu += 1;
            if iu == rlen {
                iu = 0;
            }
            iw += 1;
            if iw == rlen {
                iw = 0;
            }
        }
    } else {
        for y in y0..=y_max {
            let up = sc.ring[iu];
            let b_pack = Pack::<i32, VL>::from_fn(|i| b[y + (VL - 1 - i) * s - 1] as i32);
            let o = fused(diag, up, o_prev, b_pack);
            row[y] = o.top();
            let bottom = row[y + VL * s];
            sc.ring[iw] = o.shift_up_insert(bottom);
            o_prev = o;
            diag = up;
            iu += 1;
            if iu == rlen {
                iu = 0;
            }
            iw += 1;
            if iw == rlen {
                iw = 0;
            }
        }
    }
}

/// Phase 3 of an LCS temporal tile: drain the surviving ring into the
/// tail triangles, finish every level scalar-wise up to `y1` and export
/// the east column. `y_max` must match the value [`tile_seg_prologue`]
/// returned and the ring must hold `V(j)` at slot `j % (s+1)` for
/// `j ∈ y_max ..= y_max+s`, as left behind by the steady state.
// Justification: same tile-contract signature as `tile_seg`.
#[allow(clippy::too_many_arguments)]
pub fn tile_seg_epilogue<const VL: usize>(
    row: &mut [i32],
    y1: usize,
    a_tile: &[u8],
    b: &[u8],
    s: usize,
    right_col: &mut [i32],
    sc: &mut ScratchLcs<VL>,
    y_max: usize,
) {
    let rlen = s + 1;
    for i in 1..VL {
        let base = y_max + (VL - 1 - i) * s;
        for j in y_max..=y_max + s {
            let v = sc.ring[j % rlen];
            sc.tail[i][j - y_max] = v.extract(i);
        }
        let ca = a_tile[i - 1];
        let (lo, hi_planes) = sc.tail.split_at_mut(i);
        let plane = &mut hi_planes[0];
        for y in base + s + 1..=y1 {
            let rel = y - base;
            let (diag, up) = if i == 1 {
                (row[y - 1], row[y])
            } else {
                let bb = y - (base + s);
                (lo[i - 1][bb - 1], lo[i - 1][bb])
            };
            plane[rel] = lcs_update(diag, up, plane[rel - 1], ca, b[y - 1]);
        }
        right_col[i] = plane[y1 - base];
    }
    // Final level VL.
    {
        let below = &sc.tail[VL - 1]; // based at y_max
        let ca = a_tile[VL - 1];
        for y in y_max + 1..=y1 {
            let rel = y - y_max;
            row[y] = lcs_update(below[rel - 1], below[rel], row[y - 1], ca, b[y - 1]);
        }
        right_col[VL] = row[y1];
    }
}

/// Advance the full DP row by `VL` sequence-`A` positions (whole-row
/// temporal tile — the non-blocked configuration).
pub fn tile<const VL: usize>(
    row: &mut [i32],
    a_tile: &[u8],
    b: &[u8],
    s: usize,
    sc: &mut ScratchLcs<VL>,
) {
    let lb = b.len();
    let zeros = [0i32; 17];
    let mut sink = [0i32; 17];
    assert!(VL < zeros.len());
    tile_seg::<VL>(row, 1, lb, a_tile, b, s, &zeros, &mut sink, sc);
}

/// One scalar DP row step over the whole row (left boundary column 0).
pub fn scalar_row_step(row: &mut [i32], ca: u8, b: &[u8]) {
    scalar_row_step_seg(row, ca, b, 1, b.len(), 0, 0);
}

/// Compute the final DP row `lcs[a.len()][0..=b.len()]` with the temporal
/// scheme (vector length `VL`, stride `s`). Bit-identical to
/// `tempora_stencil::reference::lcs_final_row`.
pub fn final_row<const VL: usize>(a: &[u8], b: &[u8], s: usize) -> Vec<i32> {
    let mut row = vec![0i32; b.len() + 1];
    if b.is_empty() {
        return row;
    }
    let mut sc = ScratchLcs::<VL>::new(s);
    let tiles = a.len() / VL;
    for t in 0..tiles {
        tile::<VL>(&mut row, &a[t * VL..(t + 1) * VL], b, s, &mut sc);
    }
    for &ca in &a[tiles * VL..] {
        scalar_row_step(&mut row, ca, b);
    }
    row
}

/// LCS length via the temporal scheme (`VL = 8`, the paper's integer
/// configuration).
pub fn length(a: &[u8], b: &[u8], s: usize) -> i32 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // Panic-justification: `b` is non-empty (checked above), so the final
    // row has `b.len()` entries and `last()` is always Some.
    *final_row::<8>(a, b, s).last().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_grid::random_sequence;
    use tempora_simd::Mask;
    use tempora_stencil::{lcs_update_pack, reference};

    #[test]
    fn fused_update_matches_lcs_update_pack() {
        // The steady state's fused mask-blend lane function must agree
        // with the two-step eq_mask + lcs_update_pack form bit for bit
        // (including at i32::MAX, where diag + 1 wraps in both).
        let diag = Pack::<i32, 8>::from_fn(|i| [0, 3, -1, i32::MAX, 7, 2, 5, 1][i]);
        let up = Pack::<i32, 8>::from_fn(|i| (i as i32) * 3 - 4);
        let left = Pack::<i32, 8>::from_fn(|i| 6 - i as i32);
        let a = Pack::<i32, 8>::from_fn(|i| (i % 3) as i32);
        let b = Pack::<i32, 8>::from_fn(|i| (i % 2) as i32);
        let eq: Mask<8> = a.eq_mask(b);
        let gold = lcs_update_pack(diag, up, left, eq);
        let fused = Pack::<i32, 8>::from_fn(|i| {
            let mask = -((a.0[i] == b.0[i]) as i32);
            (diag.0[i].wrapping_add(1) & mask) | (up.0[i].max(left.0[i]) & !mask)
        });
        assert_eq!(fused, gold);
    }

    #[test]
    fn final_row_matches_reference() {
        for &(la, lb) in &[
            (8usize, 40usize),
            (16, 100),
            (24, 33),
            (40, 17),
            (7, 50),
            (64, 257),
        ] {
            for s in 1..=3 {
                let a = random_sequence(la, 4, la as u64);
                let b = random_sequence(lb, 4, lb as u64 + 1);
                let ours = final_row::<8>(&a, &b, s);
                let gold = reference::lcs_final_row(&a, &b);
                assert_eq!(ours, gold, "la={la} lb={lb} s={s}");
            }
        }
    }

    #[test]
    fn vl4_variant_matches_reference() {
        let a = random_sequence(30, 3, 1);
        let b = random_sequence(77, 3, 2);
        for s in 1..=4 {
            assert_eq!(final_row::<4>(&a, &b, s), reference::lcs_final_row(&a, &b));
        }
    }

    #[test]
    fn length_known_answers() {
        assert_eq!(length(b"ABCBDAB", b"BDCABA", 1), 4);
        assert_eq!(length(b"GATTACA", b"GATTACA", 2), 7);
        assert_eq!(length(b"AAAA", b"BBBB", 1), 0);
        assert_eq!(length(b"", b"ABC", 1), 0);
        assert_eq!(length(b"ABCDEFGHIJKLMNOP", b"", 1), 0);
    }

    #[test]
    fn binary_alphabet_stress() {
        for seed in 0..5 {
            let a = random_sequence(48, 2, seed);
            let b = random_sequence(96, 2, seed + 100);
            assert_eq!(
                length(&a, &b, 1),
                *reference::lcs_final_row(&a, &b).last().unwrap()
            );
        }
    }

    #[test]
    fn tiny_b_falls_back_to_scalar() {
        let a = random_sequence(16, 4, 9);
        let b = random_sequence(5, 4, 10);
        assert_eq!(final_row::<8>(&a, &b, 1), reference::lcs_final_row(&a, &b));
    }

    #[test]
    fn segmented_tiles_stitch_exactly() {
        // Process the table in column blocks, threading the column edges
        // through tile_seg, and compare every block boundary against the
        // full-table reference.
        let a = random_sequence(32, 3, 5);
        let b = random_sequence(200, 3, 6);
        let (la, lb) = (a.len(), b.len());
        let gold_table = reference::lcs_table(&a, &b);
        let w = lb + 1;
        for s in [1usize, 2] {
            for block in [24usize, 64, 96] {
                let mut row = vec![0i32; lb + 1];
                let mut sc = ScratchLcs::<8>::new(s);
                for t in 0..la / 8 {
                    let x0 = t * 8;
                    let mut left = [0i32; 9];
                    let mut right = [0i32; 9];
                    let mut y0 = 1usize;
                    while y0 <= lb {
                        let y1 = (y0 + block - 1).min(lb);
                        tile_seg::<8>(
                            &mut row,
                            y0,
                            y1,
                            &a[x0..x0 + 8],
                            &b,
                            s,
                            &left,
                            &mut right,
                            &mut sc,
                        );
                        // Exported east column must match the table.
                        for k in 0..=8 {
                            assert_eq!(
                                right[k],
                                gold_table[(x0 + k) * w + y1],
                                "s={s} block={block} x0={x0} y1={y1} k={k}"
                            );
                        }
                        left = right;
                        y0 = y1 + 1;
                    }
                }
                // Final rows match.
                let gold_row = &gold_table[(la / 8 * 8) * w..(la / 8 * 8) * w + w];
                assert_eq!(&row[..], gold_row);
            }
        }
    }
}
