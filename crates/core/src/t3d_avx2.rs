//! Hand-scheduled AVX2 (`std::arch`) steady states for the 3-D temporal
//! engines: Heat-3D (3D7P star Jacobi) and GS-3D.
//!
//! Same division of labour as [`crate::t2d_avx2`]: the wavefront-plane
//! ring, prologue, epilogue and boundary handling come from the portable
//! engine's three-phase split ([`crate::t3d::tile_prologue`] /
//! [`crate::t3d::tile_epilogue`]); only the steady state is pinned to the
//! paper's §3.3 instruction mix (`vfmadd231pd` + one `vpermpd` + one
//! `vblendpd` per produced input vector — the per-point reorganization
//! cost does not grow with dimensionality). Results stay bit-identical to
//! the portable engine and therefore to the scalar references.
//!
//! Use [`crate::engine`] for transparent runtime dispatch.

#[cfg(target_arch = "x86_64")]
use crate::kernels::Kernel3d;
#[cfg(target_arch = "x86_64")]
use crate::t3d::{self, Scratch3d};
#[cfg(target_arch = "x86_64")]
use tempora_grid::Grid3;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;
    use crate::kernels::{GsKern3d, JacobiKern3d};
    use tempora_simd::arch::avx2;

    /// AVX2 steady state of the Heat-3D (3D7P star Jacobi) tile: same
    /// loop structure as [`t3d::tile_steady`].
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn steady_heat3d(
        g: &mut Grid3<f64>,
        kern: &JacobiKern3d,
        s: usize,
        sc: &mut Scratch3d<f64, 4>,
        x_max: usize,
    ) {
        const VL: usize = 4;
        let (ny, nz) = (g.ny(), g.nz());
        let (p, pl) = (g.pitch(), g.plane());
        let wz = nz + 2;
        let rlen = s + 2;
        let lp = |y: usize, z: usize| y * wz + z;
        let a = g.data_mut();
        let cxm = avx2::splat(kern.0.cxm);
        let cym = avx2::splat(kern.0.cym);
        let czm = avx2::splat(kern.0.czm);
        let cc = avx2::splat(kern.0.cc);
        let czp = avx2::splat(kern.0.czp);
        let cyp = avx2::splat(kern.0.cyp);
        let cxp = avx2::splat(kern.0.cxp);
        // SAFETY: every unsafe op in the steady-state loop is an
        // `arch::avx2` vocabulary call whose sole precondition is
        // AVX2/FMA availability — discharged by this fn's own
        // `#[target_feature(enable = "avx2,fma")]` caller contract. All
        // grid and ring accesses use checked slice indexing; the deepest
        // read `a[(x_max + VL·s)·pl + …]` is in bounds because the
        // shared prologue established `x_max + VL·s ≤ nx + 1`.
        unsafe {
            for x in 1..=x_max {
                let im1 = (x - 1) % rlen;
                let i0 = x % rlen;
                let ip1 = (x + 1) % rlen;
                let ips = (x + s) % rlen;
                let mut wplane = core::mem::take(&mut sc.ring[ips]);
                {
                    let rm1 = &sc.ring[im1];
                    let r0 = &sc.ring[i0];
                    let rp1 = &sc.ring[ip1];
                    for y in 1..=ny {
                        // z-west and centre packs carried in registers.
                        let mut zm = avx2::from_pack(r0[lp(y, 0)]);
                        let mut m = avx2::from_pack(r0[lp(y, 1)]);
                        for z in 1..=nz {
                            let idx = lp(y, z);
                            let zp = avx2::from_pack(r0[idx + 1]);
                            let xm = avx2::from_pack(rm1[idx]);
                            let ym = avx2::from_pack(r0[idx - wz]);
                            let yp = avx2::from_pack(r0[idx + wz]);
                            let xp = avx2::from_pack(rp1[idx]);
                            // The same fused tree as Heat3dCoeffs::apply.
                            let o = avx2::fmadd(
                                xm,
                                cxm,
                                avx2::fmadd(
                                    ym,
                                    cym,
                                    avx2::fmadd(
                                        zm,
                                        czm,
                                        avx2::fmadd(
                                            m,
                                            cc,
                                            avx2::fmadd(
                                                zp,
                                                czp,
                                                avx2::fmadd(yp, cyp, avx2::mul(xp, cxp)),
                                            ),
                                        ),
                                    ),
                                ),
                            );
                            a[x * pl + y * p + z] = avx2::extract_top(o);
                            let bottom = a[(x + VL * s) * pl + y * p + z];
                            wplane[idx] = avx2::to_pack(avx2::shift_up_insert(o, bottom));
                            zm = m;
                            m = zp;
                        }
                    }
                }
                sc.ring[ips] = wplane;
            }
        }
    }

    /// AVX2 steady state of the GS-3D (3D7P Gauss-Seidel) tile: newest
    /// operands come from the previous output plane (`x-1`), the current
    /// output plane being filled (`y-1`) and the previous output register
    /// (`z-1`), exactly as in the portable steady state (§3.4).
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn steady_gs3d(
        g: &mut Grid3<f64>,
        kern: &GsKern3d,
        s: usize,
        sc: &mut Scratch3d<f64, 4>,
        x_max: usize,
    ) {
        const VL: usize = 4;
        let (ny, nz) = (g.ny(), g.nz());
        let (p, pl) = (g.pitch(), g.plane());
        let bc = g.boundary().value();
        let wz = nz + 2;
        let rlen = s + 2;
        let lp = |y: usize, z: usize| y * wz + z;
        let a = g.data_mut();
        let cxm = avx2::splat(kern.0.cxm);
        let cym = avx2::splat(kern.0.cym);
        let czm = avx2::splat(kern.0.czm);
        let cc = avx2::splat(kern.0.cc);
        let czp = avx2::splat(kern.0.czp);
        let cyp = avx2::splat(kern.0.cyp);
        let cxp = avx2::splat(kern.0.cxp);
        // SAFETY: every unsafe op in the steady-state loop is an
        // `arch::avx2` vocabulary call whose sole precondition is
        // AVX2/FMA availability — discharged by this fn's own
        // `#[target_feature(enable = "avx2,fma")]` caller contract. All
        // grid and ring accesses use checked slice indexing; the deepest
        // read `a[(x_max + VL·s)·pl + …]` is in bounds because the
        // shared prologue established `x_max + VL·s ≤ nx + 1`.
        unsafe {
            for x in 1..=x_max {
                let i0 = x % rlen;
                let ip1 = (x + 1) % rlen;
                let ips = (x + s) % rlen;
                let mut wplane = core::mem::take(&mut sc.ring[ips]);
                {
                    let r0 = &sc.ring[i0];
                    let rp1 = &sc.ring[ip1];
                    for y in 1..=ny {
                        let mut o_z = avx2::splat(bc); // O(x, y, 0): z-boundary
                        let mut m = avx2::from_pack(r0[lp(y, 1)]);
                        for z in 1..=nz {
                            let idx = lp(y, z);
                            let zp = avx2::from_pack(r0[idx + 1]);
                            let yp = avx2::from_pack(r0[idx + wz]);
                            let xp = avx2::from_pack(rp1[idx]);
                            let new_xm = avx2::from_pack(sc.o_prev[idx]);
                            let new_ym = avx2::from_pack(sc.o_cur[idx - wz]);
                            // The same fused tree as Gs3dCoeffs::apply.
                            let o = avx2::fmadd(
                                new_xm,
                                cxm,
                                avx2::fmadd(
                                    new_ym,
                                    cym,
                                    avx2::fmadd(
                                        o_z,
                                        czm,
                                        avx2::fmadd(
                                            m,
                                            cc,
                                            avx2::fmadd(
                                                zp,
                                                czp,
                                                avx2::fmadd(yp, cyp, avx2::mul(xp, cxp)),
                                            ),
                                        ),
                                    ),
                                ),
                            );
                            a[x * pl + y * p + z] = avx2::extract_top(o);
                            let bottom = a[(x + VL * s) * pl + y * p + z];
                            wplane[idx] = avx2::to_pack(avx2::shift_up_insert(o, bottom));
                            sc.o_cur[idx] = avx2::to_pack(o);
                            o_z = o;
                            m = zp;
                        }
                    }
                }
                sc.ring[ips] = wplane;
                core::mem::swap(&mut sc.o_prev, &mut sc.o_cur);
                // Refresh the halo packs of the new o_cur (the y = 1 reads of
                // the next slab look at row 0).
                for z in 0..wz {
                    sc.o_cur[lp(0, z)] = tempora_simd::Pack::splat(bc);
                }
            }
        }
    }
}

/// One Heat-3D temporal tile with the AVX2 steady state (shared
/// prologue/epilogue with the portable engine; degenerate `nx < VL·s`
/// tiles fall back to the scalar schedule). Panics if AVX2+FMA are
/// unavailable. The tiled layer reaches this through
/// [`crate::engine::Avx2Exec3d`].
#[cfg(target_arch = "x86_64")]
pub fn tile_heat3d_avx2(
    g: &mut Grid3<f64>,
    kern: &crate::kernels::JacobiKern3d,
    s: usize,
    sc: &mut Scratch3d<f64, 4>,
) {
    tile_with(g, kern, s, sc, |g, k, s, sc, xm| {
        // SAFETY: tile_with asserted AVX2+FMA availability.
        unsafe { imp::steady_heat3d(g, k, s, sc, xm) }
    });
}

/// Shared three-phase sandwich of one AVX2 tile: availability assert,
/// degenerate fallback, portable prologue, the given steady state,
/// portable epilogue.
#[cfg(target_arch = "x86_64")]
fn tile_with<K: Kernel3d<f64>>(
    g: &mut Grid3<f64>,
    kern: &K,
    s: usize,
    sc: &mut Scratch3d<f64, 4>,
    steady: impl FnOnce(&mut Grid3<f64>, &K, usize, &mut Scratch3d<f64, 4>, usize),
) {
    assert!(
        tempora_simd::arch::avx2_available(),
        "AVX2+FMA not available on this CPU"
    );
    if t3d::tile_fallback_if_degenerate::<f64, 4, K>(g, kern, s, sc) {
        return;
    }
    let x_max = t3d::tile_prologue::<f64, 4, K>(g, kern, s, sc);
    steady(g, kern, s, sc, x_max);
    t3d::tile_epilogue::<f64, 4, K>(g, kern, s, sc, x_max);
}

/// One GS-3D temporal tile with the AVX2 steady state; see
/// [`tile_heat3d_avx2`].
#[cfg(target_arch = "x86_64")]
pub fn tile_gs3d_avx2(
    g: &mut Grid3<f64>,
    kern: &crate::kernels::GsKern3d,
    s: usize,
    sc: &mut Scratch3d<f64, 4>,
) {
    tile_with(g, kern, s, sc, |g, k, s, sc, xm| {
        // SAFETY: tile_with asserted AVX2+FMA availability.
        unsafe { imp::steady_gs3d(g, k, s, sc, xm) }
    });
}

/// Drive `steps` time steps through whole AVX2 tiles; the `steps mod 4`
/// remainder runs scalar, exactly like [`t3d::run`].
#[cfg(target_arch = "x86_64")]
fn run_with<K: Kernel3d<f64>>(
    grid: &Grid3<f64>,
    kern: &K,
    steps: usize,
    s: usize,
    tile: impl Fn(&mut Grid3<f64>, &K, usize, &mut Scratch3d<f64, 4>),
) -> Grid3<f64> {
    assert_eq!(grid.halo(), 1, "temporal engines use halo width 1");
    let mut g = grid.clone();
    let mut sc = Scratch3d::<f64, 4>::new(s, g.ny(), g.nz());
    for _ in 0..steps / 4 {
        tile(&mut g, kern, s, &mut sc);
    }
    for _ in 0..steps % 4 {
        let (mut pa, mut pb) = (
            core::mem::take(&mut sc.plane_a),
            core::mem::take(&mut sc.plane_b),
        );
        t3d::scalar_step_inplace(&mut g, kern, &mut pa, &mut pb);
        sc.plane_a = pa;
        sc.plane_b = pb;
    }
    g
}

/// Run `steps` Heat-3D time steps with the AVX2 steady state; panics if
/// AVX2+FMA are unavailable (use [`crate::engine`] for dispatch).
#[cfg(target_arch = "x86_64")]
pub fn run_heat3d_avx2(
    grid: &Grid3<f64>,
    kern: &crate::kernels::JacobiKern3d,
    steps: usize,
    s: usize,
) -> Grid3<f64> {
    run_with(grid, kern, steps, s, tile_heat3d_avx2)
}

/// Run `steps` GS-3D time steps with the AVX2 steady state; panics if
/// AVX2+FMA are unavailable (use [`crate::engine`] for dispatch).
#[cfg(target_arch = "x86_64")]
pub fn run_gs3d_avx2(
    grid: &Grid3<f64>,
    kern: &crate::kernels::GsKern3d,
    steps: usize,
    s: usize,
) -> Grid3<f64> {
    run_with(grid, kern, steps, s, tile_gs3d_avx2)
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::kernels::{GsKern3d, JacobiKern3d};
    use tempora_grid::{fill_random_3d, Boundary};
    use tempora_simd::arch::avx2_available;
    use tempora_stencil::{reference, Gs3dCoeffs, Heat3dCoeffs};

    fn grid(nx: usize, ny: usize, nz: usize, seed: u64, b: f64) -> Grid3<f64> {
        let mut g = Grid3::new(nx, ny, nz, 1, Boundary::Dirichlet(b));
        fill_random_3d(&mut g, seed, -1.0, 1.0);
        g
    }

    #[test]
    fn heat3d_avx2_matches_reference_bitwise() {
        if !avx2_available() {
            return;
        }
        let c = Heat3dCoeffs::classic(0.11);
        let kern = JacobiKern3d(c);
        for &(nx, ny, nz) in &[(9usize, 5usize, 6usize), (16, 8, 7), (21, 6, 11)] {
            for steps in [4usize, 7, 8] {
                let g = grid(nx, ny, nz, (nx * ny * nz + steps) as u64, 0.3);
                let ours = run_heat3d_avx2(&g, &kern, steps, 2);
                let gold = reference::heat3d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} ny={ny} nz={nz} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
                ours.check_canaries().unwrap();
            }
        }
    }

    #[test]
    fn gs3d_avx2_matches_reference_bitwise() {
        if !avx2_available() {
            return;
        }
        let c = Gs3dCoeffs::new(0.21, 0.13, 0.08, 0.3, 0.09, 0.11, 0.07);
        let kern = GsKern3d(c);
        for &(nx, ny, nz) in &[(9usize, 4usize, 5usize), (17, 7, 6), (26, 6, 7)] {
            for steps in [4usize, 8, 9] {
                let g = grid(nx, ny, nz, (nx + ny + nz + steps) as u64, 0.1);
                let ours = run_gs3d_avx2(&g, &kern, steps, 2);
                let gold = reference::gs3d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} ny={ny} nz={nz} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn degenerate_outer_extent_falls_back() {
        if !avx2_available() {
            return;
        }
        let c = Heat3dCoeffs::classic(0.15);
        let kern = JacobiKern3d(c);
        let g = grid(5, 6, 6, 3, 0.0); // nx < 4·2
        let ours = run_heat3d_avx2(&g, &kern, 6, 2);
        let gold = reference::heat3d(&g, c, 6);
        assert!(ours.interior_eq(&gold));
    }
}
