//! Hand-scheduled AVX2 (`std::arch`) steady states for the 2-D temporal
//! engines: Heat-2D (2D5P Jacobi), 2D9P (box Jacobi), GS-2D and
//! Game-of-Life (integer 2D9P at `vl = 8`).
//!
//! The portable engine in [`crate::t2d`] leaves instruction selection to
//! LLVM; these variants pin the steady state to the instruction mix the
//! paper's §3.3 analysis assumes — `vfmadd231pd` for the f64 stencil
//! updates, a `vpaddd` tree plus the `vpsravd` rule-table bit test for
//! the integer Life update, and one lane-crossing rotate (`vpermpd` /
//! `vpermd`) plus one in-lane blend (`vblendpd` / `vpblendd`) for the
//! input-vector production — while the wavefront ring, prologue,
//! epilogue and all boundary handling are shared with the portable engine
//! through its three-phase split ([`crate::t2d::tile_prologue`] /
//! [`crate::t2d::tile_epilogue`]). Results stay bit-identical to the
//! portable engine and therefore to the scalar references.
//!
//! Use [`crate::engine`] for transparent runtime dispatch.

#[cfg(target_arch = "x86_64")]
use crate::kernels::Kernel2d;
#[cfg(target_arch = "x86_64")]
use crate::t2d::{self, Scratch2d};
#[cfg(target_arch = "x86_64")]
use tempora_grid::Grid2;
#[cfg(target_arch = "x86_64")]
use tempora_simd::Scalar;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;
    use crate::kernels::{BoxKern2d, GsKern2d, JacobiKern2d, LifeKern2d};
    use tempora_simd::arch::avx2;
    use tempora_simd::arch::avx2::{__m256d, __m256i};

    /// AVX2 steady state of the Heat-2D (2D5P star Jacobi) tile: same
    /// loop structure as [`t2d::tile_steady`], with the west/centre packs
    /// carried in `__m256d` registers between inner iterations.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn steady_heat2d(
        g: &mut Grid2<f64>,
        kern: &JacobiKern2d,
        s: usize,
        sc: &mut Scratch2d<f64, 4>,
        x_max: usize,
    ) {
        const VL: usize = 4;
        let (ny, p) = (g.ny(), g.pitch());
        let rlen = s + 2;
        let a = g.data_mut();
        let cn = avx2::splat(kern.0.cn);
        let cw = avx2::splat(kern.0.cw);
        let cc = avx2::splat(kern.0.cc);
        let ce = avx2::splat(kern.0.ce);
        let cs = avx2::splat(kern.0.cs);
        // SAFETY: every unsafe op in the steady-state loop is an
        // `arch::avx2` vocabulary call whose sole precondition is
        // AVX2/FMA availability — discharged by this fn's own
        // `#[target_feature(enable = "avx2,fma")]` caller contract. All
        // grid and ring accesses use checked slice indexing; the deepest
        // read `a[(x_max + VL·s)·p + y]` is in bounds because the shared
        // prologue established `x_max + VL·s ≤ nx + 1`.
        unsafe {
            for x in 1..=x_max {
                let im1 = (x - 1) % rlen;
                let i0 = x % rlen;
                let ip1 = (x + 1) % rlen;
                let ips = (x + s) % rlen;
                let mut wrow = core::mem::take(&mut sc.ring[ips]);
                {
                    let rm1 = &sc.ring[im1];
                    let r0 = &sc.ring[i0];
                    let rp1 = &sc.ring[ip1];
                    let mut w = avx2::from_pack(r0[0]);
                    let mut m = avx2::from_pack(r0[1]);
                    for y in 1..=ny {
                        let e = avx2::from_pack(r0[y + 1]);
                        let n = avx2::from_pack(rm1[y]);
                        let sth = avx2::from_pack(rp1[y]);
                        // n·cn + (w·cw + (m·cc + (e·ce + s·cs))), the same
                        // fused tree as Heat2dCoeffs::apply.
                        let o = avx2::fmadd(
                            n,
                            cn,
                            avx2::fmadd(
                                w,
                                cw,
                                avx2::fmadd(m, cc, avx2::fmadd(e, ce, avx2::mul(sth, cs))),
                            ),
                        );
                        a[x * p + y] = avx2::extract_top(o);
                        let bottom = a[(x + VL * s) * p + y];
                        wrow[y] = avx2::to_pack(avx2::shift_up_insert(o, bottom));
                        w = m;
                        m = e;
                    }
                }
                sc.ring[ips] = wrow;
            }
        }
    }

    /// AVX2 steady state of the 2D9P (box Jacobi) tile.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn steady_box2d(
        g: &mut Grid2<f64>,
        kern: &BoxKern2d,
        s: usize,
        sc: &mut Scratch2d<f64, 4>,
        x_max: usize,
    ) {
        const VL: usize = 4;
        let (ny, p) = (g.ny(), g.pitch());
        let rlen = s + 2;
        let a = g.data_mut();
        let c: [[__m256d; 3]; 3] =
            core::array::from_fn(|i| core::array::from_fn(|j| avx2::splat(kern.0.c[i][j])));
        // SAFETY: every unsafe op in the steady-state loop is an
        // `arch::avx2` vocabulary call whose sole precondition is
        // AVX2/FMA availability — discharged by this fn's own
        // `#[target_feature(enable = "avx2,fma")]` caller contract. All
        // grid and ring accesses use checked slice indexing; the deepest
        // read `a[(x_max + VL·s)·p + y]` is in bounds because the shared
        // prologue established `x_max + VL·s ≤ nx + 1`.
        unsafe {
            for x in 1..=x_max {
                let im1 = (x - 1) % rlen;
                let i0 = x % rlen;
                let ip1 = (x + 1) % rlen;
                let ips = (x + s) % rlen;
                let mut wrow = core::mem::take(&mut sc.ring[ips]);
                {
                    let rm1 = &sc.ring[im1];
                    let r0 = &sc.ring[i0];
                    let rp1 = &sc.ring[ip1];
                    let mut w = avx2::from_pack(r0[0]);
                    let mut m = avx2::from_pack(r0[1]);
                    for y in 1..=ny {
                        let e = avx2::from_pack(r0[y + 1]);
                        // Row-major 3×3 fused chain, identical to
                        // Box2dCoeffs::apply.
                        let v: [[__m256d; 3]; 3] = [
                            [
                                avx2::from_pack(rm1[y - 1]),
                                avx2::from_pack(rm1[y]),
                                avx2::from_pack(rm1[y + 1]),
                            ],
                            [w, m, e],
                            [
                                avx2::from_pack(rp1[y - 1]),
                                avx2::from_pack(rp1[y]),
                                avx2::from_pack(rp1[y + 1]),
                            ],
                        ];
                        let mut o = avx2::mul(v[2][2], c[2][2]);
                        o = avx2::fmadd(v[2][1], c[2][1], o);
                        o = avx2::fmadd(v[2][0], c[2][0], o);
                        o = avx2::fmadd(v[1][2], c[1][2], o);
                        o = avx2::fmadd(v[1][1], c[1][1], o);
                        o = avx2::fmadd(v[1][0], c[1][0], o);
                        o = avx2::fmadd(v[0][2], c[0][2], o);
                        o = avx2::fmadd(v[0][1], c[0][1], o);
                        o = avx2::fmadd(v[0][0], c[0][0], o);
                        a[x * p + y] = avx2::extract_top(o);
                        let bottom = a[(x + VL * s) * p + y];
                        wrow[y] = avx2::to_pack(avx2::shift_up_insert(o, bottom));
                        w = m;
                        m = e;
                    }
                }
                sc.ring[ips] = wrow;
            }
        }
    }

    /// AVX2 steady state of the GS-2D (2D5P Gauss-Seidel) tile: the
    /// newest-north operand comes from the previous output row
    /// (`sc.o_prev`), the newest-west operand from the previous output
    /// vector carried in a register (§3.4).
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn steady_gs2d(
        g: &mut Grid2<f64>,
        kern: &GsKern2d,
        s: usize,
        sc: &mut Scratch2d<f64, 4>,
        x_max: usize,
    ) {
        const VL: usize = 4;
        let (ny, p) = (g.ny(), g.pitch());
        let bc = g.boundary().value();
        let rlen = s + 2;
        let a = g.data_mut();
        let cn = avx2::splat(kern.0.cn);
        let cw = avx2::splat(kern.0.cw);
        let cc = avx2::splat(kern.0.cc);
        let ce = avx2::splat(kern.0.ce);
        let cs = avx2::splat(kern.0.cs);
        // SAFETY: every unsafe op in the steady-state loop is an
        // `arch::avx2` vocabulary call whose sole precondition is
        // AVX2/FMA availability — discharged by this fn's own
        // `#[target_feature(enable = "avx2,fma")]` caller contract. All
        // grid and ring accesses use checked slice indexing; the deepest
        // read `a[(x_max + VL·s)·p + y]` is in bounds because the shared
        // prologue established `x_max + VL·s ≤ nx + 1`.
        unsafe {
            for x in 1..=x_max {
                let i0 = x % rlen;
                let ip1 = (x + 1) % rlen;
                let ips = (x + s) % rlen;
                let mut wrow = core::mem::take(&mut sc.ring[ips]);
                {
                    let r0 = &sc.ring[i0];
                    let rp1 = &sc.ring[ip1];
                    let mut o_west = avx2::splat(bc); // O(x, 0): y-boundary
                    let mut m = avx2::from_pack(r0[1]);
                    for y in 1..=ny {
                        let e = avx2::from_pack(r0[y + 1]);
                        let sth = avx2::from_pack(rp1[y]);
                        let n_new = avx2::from_pack(sc.o_prev[y]);
                        // new_n·cn + (new_w·cw + (m·cc + (e·ce + s·cs))),
                        // the same fused tree as Gs2dCoeffs::apply.
                        let o = avx2::fmadd(
                            n_new,
                            cn,
                            avx2::fmadd(
                                o_west,
                                cw,
                                avx2::fmadd(m, cc, avx2::fmadd(e, ce, avx2::mul(sth, cs))),
                            ),
                        );
                        a[x * p + y] = avx2::extract_top(o);
                        let bottom = a[(x + VL * s) * p + y];
                        wrow[y] = avx2::to_pack(avx2::shift_up_insert(o, bottom));
                        sc.o_cur[y] = avx2::to_pack(o);
                        o_west = o;
                        m = e;
                    }
                }
                sc.ring[ips] = wrow;
                core::mem::swap(&mut sc.o_prev, &mut sc.o_cur);
            }
        }
    }

    /// AVX2 steady state of the Game-of-Life (integer 2D9P box) tile at
    /// `vl = 8` i32 lanes: the eight neighbour packs are summed with a
    /// `vpaddd` tree and the B/S rule table is applied branch-free as
    /// `(mask >> sum) & 1` — `vpmulld` rule-mask select, `vpsravd`
    /// variable shift — exactly the portable `LifeRule::apply_pack`
    /// arithmetic, lane for lane.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn steady_life2d(
        g: &mut Grid2<i32>,
        kern: &LifeKern2d,
        s: usize,
        sc: &mut Scratch2d<i32, 8>,
        x_max: usize,
    ) {
        const VL: usize = 8;
        let (ny, p) = (g.ny(), g.pitch());
        let rlen = s + 2;
        let a = g.data_mut();
        let birth = avx2::splat_i32(kern.0.birth as i32);
        let delta = avx2::splat_i32(kern.0.survive as i32 - kern.0.birth as i32);
        let one = avx2::splat_i32(1);
        // SAFETY: every unsafe op in the steady-state loop is an
        // `arch::avx2` vocabulary call whose sole precondition is AVX2
        // availability — discharged by this fn's own
        // `#[target_feature(enable = "avx2")]` caller contract. All
        // grid and ring accesses use checked slice indexing; the deepest
        // read `a[(x_max + VL·s)·p + y]` is in bounds because the shared
        // prologue established `x_max + VL·s ≤ nx + 1`.
        unsafe {
            for x in 1..=x_max {
                let im1 = (x - 1) % rlen;
                let i0 = x % rlen;
                let ip1 = (x + 1) % rlen;
                let ips = (x + s) % rlen;
                let mut wrow = core::mem::take(&mut sc.ring[ips]);
                {
                    let rm1 = &sc.ring[im1];
                    let r0 = &sc.ring[i0];
                    let rp1 = &sc.ring[ip1];
                    let mut w = avx2::from_pack_i32(r0[0]);
                    let mut m = avx2::from_pack_i32(r0[1]);
                    for y in 1..=ny {
                        let e = avx2::from_pack_i32(r0[y + 1]);
                        // Neighbour-sum tree over the eight box neighbours
                        // (wrapping adds are associative, so the tree order
                        // is free to maximize ILP while staying bit-identical
                        // to the portable left-to-right sum).
                        let n: [__m256i; 6] = [
                            avx2::from_pack_i32(rm1[y - 1]),
                            avx2::from_pack_i32(rm1[y]),
                            avx2::from_pack_i32(rm1[y + 1]),
                            avx2::from_pack_i32(rp1[y - 1]),
                            avx2::from_pack_i32(rp1[y]),
                            avx2::from_pack_i32(rp1[y + 1]),
                        ];
                        let sum = avx2::add_i32(
                            avx2::add_i32(avx2::add_i32(n[0], n[1]), avx2::add_i32(n[2], n[3])),
                            avx2::add_i32(avx2::add_i32(n[4], n[5]), avx2::add_i32(w, e)),
                        );
                        // Rule table: mask = birth + cur·(survive - birth);
                        // out = (mask >> sum) & 1.
                        let mask = avx2::add_i32(birth, avx2::mullo_i32(m, delta));
                        let o = avx2::and_i32(avx2::srav_i32(mask, sum), one);
                        a[x * p + y] = avx2::extract_top_i32(o);
                        let bottom = a[(x + VL * s) * p + y];
                        wrow[y] = avx2::to_pack_i32(avx2::shift_up_insert_i32(o, bottom));
                        w = m;
                        m = e;
                    }
                }
                sc.ring[ips] = wrow;
            }
        }
    }
}

/// One Heat-2D temporal tile with the AVX2 steady state (shared
/// prologue/epilogue with the portable engine; degenerate `nx < VL·s`
/// tiles fall back to the scalar schedule). Panics if AVX2+FMA are
/// unavailable. The tiled layer reaches this through
/// [`crate::engine::Avx2Exec2d`].
#[cfg(target_arch = "x86_64")]
pub fn tile_heat2d_avx2(
    g: &mut Grid2<f64>,
    kern: &crate::kernels::JacobiKern2d,
    s: usize,
    sc: &mut Scratch2d<f64, 4>,
) {
    tile_with(g, kern, s, sc, |g, k, s, sc, xm| {
        // SAFETY: tile_with asserted AVX2+FMA availability.
        unsafe { imp::steady_heat2d(g, k, s, sc, xm) }
    });
}

/// Shared three-phase sandwich of one AVX2 tile: availability assert,
/// degenerate fallback, portable prologue, the given steady state,
/// portable epilogue. Generic over the element type and lane count so
/// the f64 (`vl = 4`) and integer (`vl = 8`) steady states share it.
#[cfg(target_arch = "x86_64")]
fn tile_with<T: Scalar, const VL: usize, K: Kernel2d<T>>(
    g: &mut Grid2<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch2d<T, VL>,
    steady: impl FnOnce(&mut Grid2<T>, &K, usize, &mut Scratch2d<T, VL>, usize),
) {
    assert!(
        tempora_simd::arch::avx2_available(),
        "AVX2+FMA not available on this CPU"
    );
    if t2d::tile_fallback_if_degenerate::<T, VL, K>(g, kern, s, sc) {
        return;
    }
    let x_max = t2d::tile_prologue::<T, VL, K>(g, kern, s, sc);
    steady(g, kern, s, sc, x_max);
    t2d::tile_epilogue::<T, VL, K>(g, kern, s, sc, x_max);
}

/// One 2D9P (box Jacobi) temporal tile with the AVX2 steady state; see
/// [`tile_heat2d_avx2`].
#[cfg(target_arch = "x86_64")]
pub fn tile_box2d_avx2(
    g: &mut Grid2<f64>,
    kern: &crate::kernels::BoxKern2d,
    s: usize,
    sc: &mut Scratch2d<f64, 4>,
) {
    tile_with(g, kern, s, sc, |g, k, s, sc, xm| {
        // SAFETY: tile_with asserted AVX2+FMA availability.
        unsafe { imp::steady_box2d(g, k, s, sc, xm) }
    });
}

/// One GS-2D temporal tile with the AVX2 steady state; see
/// [`tile_heat2d_avx2`].
#[cfg(target_arch = "x86_64")]
pub fn tile_gs2d_avx2(
    g: &mut Grid2<f64>,
    kern: &crate::kernels::GsKern2d,
    s: usize,
    sc: &mut Scratch2d<f64, 4>,
) {
    tile_with(g, kern, s, sc, |g, k, s, sc, xm| {
        // SAFETY: tile_with asserted AVX2+FMA availability.
        unsafe { imp::steady_gs2d(g, k, s, sc, xm) }
    });
}

/// One Game-of-Life temporal tile with the AVX2 integer steady state
/// (`vl = 8` i32 lanes); see [`tile_heat2d_avx2`] for the three-phase
/// contract. The tiled layer reaches this through
/// [`crate::engine::Avx2Exec2d`].
#[cfg(target_arch = "x86_64")]
pub fn tile_life2d_avx2(
    g: &mut Grid2<i32>,
    kern: &crate::kernels::LifeKern2d,
    s: usize,
    sc: &mut Scratch2d<i32, 8>,
) {
    tile_with(g, kern, s, sc, |g, k, s, sc, xm| {
        // SAFETY: tile_with asserted AVX2+FMA availability.
        unsafe { imp::steady_life2d(g, k, s, sc, xm) }
    });
}

/// Drive `steps` time steps through whole AVX2 tiles; the `steps mod VL`
/// remainder runs scalar, exactly like [`t2d::run`].
#[cfg(target_arch = "x86_64")]
fn run_with<T: Scalar, const VL: usize, K: Kernel2d<T>>(
    grid: &Grid2<T>,
    kern: &K,
    steps: usize,
    s: usize,
    tile: impl Fn(&mut Grid2<T>, &K, usize, &mut Scratch2d<T, VL>),
) -> Grid2<T> {
    assert_eq!(grid.halo(), 1, "temporal engines use halo width 1");
    let mut g = grid.clone();
    let mut sc = Scratch2d::<T, VL>::new(s, g.ny());
    for _ in 0..steps / VL {
        tile(&mut g, kern, s, &mut sc);
    }
    for _ in 0..steps % VL {
        let (mut ra, mut rb) = (
            core::mem::take(&mut sc.row_a),
            core::mem::take(&mut sc.row_b),
        );
        t2d::scalar_step_inplace(&mut g, kern, &mut ra, &mut rb);
        sc.row_a = ra;
        sc.row_b = rb;
    }
    g
}

/// Run `steps` Heat-2D time steps with the AVX2 steady state; panics if
/// AVX2+FMA are unavailable (use [`crate::engine`] for dispatch).
#[cfg(target_arch = "x86_64")]
pub fn run_heat2d_avx2(
    grid: &Grid2<f64>,
    kern: &crate::kernels::JacobiKern2d,
    steps: usize,
    s: usize,
) -> Grid2<f64> {
    run_with(grid, kern, steps, s, tile_heat2d_avx2)
}

/// Run `steps` 2D9P (box Jacobi) time steps with the AVX2 steady state;
/// panics if AVX2+FMA are unavailable (use [`crate::engine`] for
/// dispatch).
#[cfg(target_arch = "x86_64")]
pub fn run_box2d_avx2(
    grid: &Grid2<f64>,
    kern: &crate::kernels::BoxKern2d,
    steps: usize,
    s: usize,
) -> Grid2<f64> {
    run_with(grid, kern, steps, s, tile_box2d_avx2)
}

/// Run `steps` GS-2D time steps with the AVX2 steady state; panics if
/// AVX2+FMA are unavailable (use [`crate::engine`] for dispatch).
#[cfg(target_arch = "x86_64")]
pub fn run_gs2d_avx2(
    grid: &Grid2<f64>,
    kern: &crate::kernels::GsKern2d,
    steps: usize,
    s: usize,
) -> Grid2<f64> {
    run_with(grid, kern, steps, s, tile_gs2d_avx2)
}

/// Run `steps` Game-of-Life time steps with the AVX2 integer steady
/// state (`vl = 8`); panics if AVX2+FMA are unavailable (use
/// [`crate::engine`] for dispatch).
#[cfg(target_arch = "x86_64")]
pub fn run_life2d_avx2(
    grid: &Grid2<i32>,
    kern: &crate::kernels::LifeKern2d,
    steps: usize,
    s: usize,
) -> Grid2<i32> {
    run_with(grid, kern, steps, s, tile_life2d_avx2)
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::kernels::{BoxKern2d, GsKern2d, JacobiKern2d};
    use tempora_grid::{fill_random_2d, Boundary};
    use tempora_simd::arch::avx2_available;
    use tempora_stencil::{reference, Box2dCoeffs, Gs2dCoeffs, Heat2dCoeffs};

    fn grid(nx: usize, ny: usize, seed: u64, b: f64) -> Grid2<f64> {
        let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(b));
        fill_random_2d(&mut g, seed, -1.0, 1.0);
        g
    }

    #[test]
    fn heat2d_avx2_matches_reference_bitwise() {
        if !avx2_available() {
            return;
        }
        let c = Heat2dCoeffs::classic(0.12);
        let kern = JacobiKern2d(c);
        for &(nx, ny) in &[(8usize, 5usize), (17, 12), (33, 9), (40, 40)] {
            for s in 2..=3 {
                for steps in [4usize, 7, 8] {
                    let g = grid(nx, ny, (nx * ny + s + steps) as u64, 0.25);
                    let ours = run_heat2d_avx2(&g, &kern, steps, s);
                    let gold = reference::heat2d(&g, c, steps);
                    assert!(
                        ours.interior_eq(&gold),
                        "nx={nx} ny={ny} s={s} steps={steps} {:?}",
                        ours.first_diff(&gold)
                    );
                    ours.check_canaries().unwrap();
                }
            }
        }
    }

    #[test]
    fn box2d_avx2_matches_reference_bitwise() {
        if !avx2_available() {
            return;
        }
        let c = Box2dCoeffs::new([[0.01, 0.07, 0.03], [0.09, 0.55, 0.08], [0.05, 0.06, 0.06]]);
        let kern = BoxKern2d(c);
        for &(nx, ny) in &[(16usize, 11usize), (25, 16), (33, 8)] {
            let g = grid(nx, ny, 77, 0.1);
            let ours = run_box2d_avx2(&g, &kern, 8, 2);
            let gold = reference::box2d(&g, c, 8);
            assert!(
                ours.interior_eq(&gold),
                "nx={nx} ny={ny} {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    fn gs2d_avx2_matches_reference_bitwise() {
        if !avx2_available() {
            return;
        }
        let c = Gs2dCoeffs::new(0.31, 0.17, 0.23, 0.11, 0.13);
        let kern = GsKern2d(c);
        for &(nx, ny) in &[(9usize, 6usize), (16, 16), (29, 10), (41, 23)] {
            for steps in [4usize, 7, 12] {
                let g = grid(nx, ny, (nx + ny + steps) as u64, -0.5);
                let ours = run_gs2d_avx2(&g, &kern, steps, 2);
                let gold = reference::gs2d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} ny={ny} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn degenerate_outer_extent_falls_back() {
        if !avx2_available() {
            return;
        }
        let c = Heat2dCoeffs::classic(0.2);
        let kern = JacobiKern2d(c);
        for nx in 1..8 {
            let g = grid(nx, 6, nx as u64, 0.5);
            let ours = run_heat2d_avx2(&g, &kern, 5, 2); // nx < 4·2
            let gold = reference::heat2d(&g, c, 5);
            assert!(ours.interior_eq(&gold), "nx={nx}");
        }
    }

    #[test]
    fn life_avx2_matches_reference_bitwise() {
        if !avx2_available() {
            return;
        }
        use crate::kernels::LifeKern2d;
        use tempora_grid::fill_random_life;
        use tempora_stencil::LifeRule;
        for rule in [LifeRule::b2s23(), LifeRule::conway()] {
            let kern = LifeKern2d(rule);
            for &(nx, ny) in &[(20usize, 16usize), (33, 9), (48, 25)] {
                let mut g = Grid2::<i32>::new(nx, ny, 1, Boundary::Dirichlet(0));
                fill_random_life(&mut g, (nx * ny) as u64, 0.35);
                for s in 2..=3 {
                    for steps in [8usize, 11, 16] {
                        let ours = run_life2d_avx2(&g, &kern, steps, s);
                        let gold = reference::life(&g, rule, steps);
                        assert!(
                            ours.interior_eq(&gold),
                            "nx={nx} ny={ny} s={s} steps={steps} {:?}",
                            ours.first_diff(&gold)
                        );
                        ours.check_canaries().unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn life_avx2_degenerate_grid_falls_back() {
        if !avx2_available() {
            return;
        }
        use crate::kernels::LifeKern2d;
        use tempora_grid::fill_random_life;
        use tempora_stencil::LifeRule;
        let rule = LifeRule::b2s23();
        let kern = LifeKern2d(rule);
        for nx in 1..16 {
            // nx < VL·s = 16: shared scalar fallback.
            let mut g = Grid2::<i32>::new(nx, 10, 1, Boundary::Dirichlet(0));
            fill_random_life(&mut g, nx as u64, 0.4);
            let ours = run_life2d_avx2(&g, &kern, 9, 2);
            let gold = reference::life(&g, rule, 9);
            assert!(ours.interior_eq(&gold), "nx={nx}");
        }
    }
}
