//! Temporal vectorization of two-dimensional stencils (paper §3.2,
//! "High-dimensional Stencils", and §3.3 layout optimizations).
//!
//! For `d ≥ 2` the inner time loop cannot be interchanged past the space
//! loops, so the temporal scheme vectorizes the **outermost** space loop
//! `x`: the input vector at `(x, y)` packs `VL` time levels along `x`,
//!
//! ```text
//! V(x, y) = ( a[t+VL-1][x][y], …, a[t+1][x+(VL-2)·s][y], a[t][x+(VL-1)·s][y] )
//! ```
//!
//! and one stencil application per inner point `y` advances all `VL`
//! levels at once (paper Figure 2). Unlike the 1-D case the produced
//! input vectors cannot stay in registers — the whole inner row is in
//! flight — so they are stored in **wavefront buffers**: a ring of
//! `s + 2` pack rows `W(j)[y] = V(j, y)`, the 2-D analogue of the 1-D
//! register ring. The store of the finished top lane and the level-0
//! bottom fill hit the main array exactly once per point per tile, so the
//! CPU–cache traffic per point is again ~`1/VL` of a spatial scheme's.
//!
//! Prologue and epilogue generalize the 1-D triangles to *row bands*:
//! level `k` is pre-computed over rows `1..=(VL-k)·s` and completed over
//! the trailing rows after the steady state drains the ring.
//!
//! Gauss-Seidel (§3.4) needs two extra structures: the previous output
//! *row* `O(x-1, ·)` (a second pack buffer, swapped each outer iteration)
//! for the newest-north operand, and the previous output *vector*
//! `O(x, y-1)` (a register) for the newest-west operand.
//!
//! The engine is generic over the element type and vector length; the
//! same code instantiates Heat-2D (`f64×4`), 2D9P (`f64×4`), Life
//! (`i32×8`) and GS-2D (`f64×4`).

use crate::kernels::{Kernel2d, Nbhd};
use tempora_grid::Grid2;
use tempora_simd::{Pack, Scalar};

/// Scratch state for one 2-D sweep configuration, reusable across tiles.
pub struct Scratch2d<T: Scalar, const VL: usize> {
    /// Head planes: `head[k]` holds level-`k` rows `0..=(VL-k)·s` (row 0 =
    /// boundary), width `ny + 2`, flat row-major.
    pub(crate) head: Vec<Vec<T>>,
    /// Tail planes: `tail[i]` holds level-`i` rows re-based at
    /// `x_max + (VL-1-i)·s`, `(i+1)·s + 2` rows of width `ny + 2`.
    pub(crate) tail: Vec<Vec<T>>,
    /// Wavefront ring: `s + 2` rows of `ny + 2` input-vector packs.
    pub(crate) ring: Vec<Vec<Pack<T, VL>>>,
    /// Previous output row `O(x-1, ·)` (Gauss-Seidel only).
    pub(crate) o_prev: Vec<Pack<T, VL>>,
    /// Output row being produced `O(x, ·)` (Gauss-Seidel only).
    pub(crate) o_cur: Vec<Pack<T, VL>>,
    /// Two old-row copies for the in-place scalar step.
    pub(crate) row_a: Vec<T>,
    pub(crate) row_b: Vec<T>,
    pub(crate) s: usize,
    pub(crate) ny: usize,
}

impl<T: Scalar, const VL: usize> Scratch2d<T, VL> {
    /// Allocate scratch for stride `s` and inner extent `ny`.
    pub fn new(s: usize, ny: usize) -> Self {
        let w = ny + 2;
        Scratch2d {
            head: (0..VL)
                .map(|k| vec![T::ZERO; ((VL - k) * s + 1) * w])
                .collect(),
            tail: (0..VL)
                .map(|i| vec![T::ZERO; ((i + 1) * s + 2) * w])
                .collect(),
            ring: (0..s + 2).map(|_| vec![Pack::splat(T::ZERO); w]).collect(),
            o_prev: vec![Pack::splat(T::ZERO); w],
            o_cur: vec![Pack::splat(T::ZERO); w],
            row_a: vec![T::ZERO; w],
            row_b: vec![T::ZERO; w],
            s,
            ny,
        }
    }
}

/// One in-place scalar time step over the whole grid (used for degenerate
/// tiles and `steps mod VL` remainders). Two saved old rows make the
/// Jacobi update single-array; Gauss-Seidel is naturally in place. Results
/// are bit-identical to the double-buffered reference.
pub fn scalar_step_inplace<T: Scalar, K: Kernel2d<T>>(
    g: &mut Grid2<T>,
    kern: &K,
    row_a: &mut [T],
    row_b: &mut [T],
) {
    let (nx, ny, p) = (g.nx(), g.ny(), g.pitch());
    let w = ny + 2;
    let a = g.data_mut();
    // row_a = old values of row x-1, row_b = old values of row x.
    let (mut row_a, mut row_b) = (&mut row_a[..w], &mut row_b[..w]);
    row_a.copy_from_slice(&a[..w]);
    for x in 1..=nx {
        row_b.copy_from_slice(&a[x * p..x * p + w]);
        for y in 1..=ny {
            let nb = Nbhd {
                v: [
                    [row_a[y - 1], row_a[y], row_a[y + 1]],
                    [row_b[y - 1], row_b[y], row_b[y + 1]],
                    [
                        a[(x + 1) * p + y - 1],
                        a[(x + 1) * p + y],
                        a[(x + 1) * p + y + 1],
                    ],
                ],
                new_n: a[(x - 1) * p + y],
                new_w: a[x * p + y - 1],
            };
            a[x * p + y] = kern.scalar(nb);
        }
        core::mem::swap(&mut row_a, &mut row_b);
    }
}

/// Advance the grid by `VL` time steps with the temporal-vectorized
/// schedule (in place, single array).
///
/// The tile is the composition of the three phases exposed below —
/// [`tile_prologue`], [`tile_steady`], [`tile_epilogue`] — so that
/// arch-specialized steady states (see `t2d_avx2`) can swap the middle
/// phase while sharing the exact boundary machinery.
///
/// # Panics
/// Panics if `s < K::MIN_STRIDE` or the grid's halo is not 1.
pub fn tile<T: Scalar, const VL: usize, K: Kernel2d<T>>(
    g: &mut Grid2<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch2d<T, VL>,
) {
    if tile_fallback_if_degenerate::<T, VL, K>(g, kern, s, sc) {
        return;
    }
    let x_max = tile_prologue::<T, VL, K>(g, kern, s, sc);
    tile_steady::<T, VL, K>(g, kern, s, sc, x_max);
    tile_epilogue::<T, VL, K>(g, kern, s, sc, x_max);
}

/// Shared degenerate-tile guard: when the outer extent cannot host the
/// vector schedule (`nx < VL·s`), run the `VL` steps with the scalar
/// schedule instead (same results) and report `true`.
pub fn tile_fallback_if_degenerate<T: Scalar, const VL: usize, K: Kernel2d<T>>(
    g: &mut Grid2<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch2d<T, VL>,
) -> bool {
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    assert_eq!(g.halo(), 1, "temporal engines use halo width 1");
    assert_eq!((sc.s, sc.ny), (s, g.ny()), "scratch shape mismatch");
    if g.nx() >= VL * s {
        return false;
    }
    for _ in 0..VL {
        let (mut ra, mut rb) = (
            core::mem::take(&mut sc.row_a),
            core::mem::take(&mut sc.row_b),
        );
        scalar_step_inplace(g, kern, &mut ra, &mut rb);
        sc.row_a = ra;
        sc.row_b = rb;
    }
    true
}

/// Phase 1 of a 2-D temporal tile: scalar head bands for levels `1..VL`,
/// the initial wavefront ring `W(0) ..= W(s)`, and (for Gauss-Seidel) the
/// initial output row `O(0, ·)` in `sc.o_prev`. Returns the steady-state
/// bound `x_max`.
pub fn tile_prologue<T: Scalar, const VL: usize, K: Kernel2d<T>>(
    g: &mut Grid2<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch2d<T, VL>,
) -> usize {
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    assert_eq!(g.halo(), 1, "temporal engines use halo width 1");
    assert_eq!((sc.s, sc.ny), (s, g.ny()), "scratch shape mismatch");
    let (nx, ny, p) = (g.nx(), g.ny(), g.pitch());
    assert!(
        nx >= VL * s,
        "degenerate tile (nx={nx} < VL*s={}): call tile_fallback_if_degenerate first",
        VL * s
    );
    let bc = g.boundary().value();
    let x_max = nx + 1 - VL * s;
    let w = ny + 2;
    let rlen = s + 2;
    let a = g.data_mut();

    // ------------------------------------------------------------------
    // Prologue: head[k] = level k over rows 1..=(VL-k)·s (row 0 boundary).
    // ------------------------------------------------------------------
    for k in 1..VL {
        let hi = (VL - k) * s;
        let (lo_planes, hi_planes) = sc.head.split_at_mut(k);
        let plane = &mut hi_planes[0];
        for v in plane[..w].iter_mut() {
            *v = bc; // boundary row 0
        }
        for x in 1..=hi {
            plane[x * w] = bc;
            plane[x * w + ny + 1] = bc;
            for y in 1..=ny {
                // Old (level k-1) 3×3 neighbourhood.
                let old = |dx: usize, dy: usize| -> T {
                    // dx, dy ∈ {0,1,2} meaning offsets -1..=1.
                    let (xx, yy) = (x + dx - 1, y + dy - 1);
                    if k == 1 {
                        a[xx * p + yy]
                    } else {
                        lo_planes[k - 1][xx * w + yy]
                    }
                };
                let nb = Nbhd {
                    v: [
                        [old(0, 0), old(0, 1), old(0, 2)],
                        [old(1, 0), old(1, 1), old(1, 2)],
                        [old(2, 0), old(2, 1), old(2, 2)],
                    ],
                    new_n: plane[(x - 1) * w + y],
                    new_w: plane[x * w + y - 1],
                };
                plane[x * w + y] = kern.scalar(nb);
            }
        }
    }

    // ------------------------------------------------------------------
    // Initial wavefront ring W(0) ..= W(s); halo packs everywhere else.
    // ------------------------------------------------------------------
    for row in sc.ring.iter_mut() {
        row[0] = Pack::splat(bc);
        row[ny + 1] = Pack::splat(bc);
    }
    for j in 0..=s {
        let head = &sc.head;
        let dst = &mut sc.ring[j % rlen];
        for (y, slot) in dst.iter_mut().enumerate().take(ny + 1).skip(1) {
            *slot = Pack::from_fn(|i| {
                let x = j + (VL - 1 - i) * s;
                if i == 0 {
                    a[x * p + y]
                } else if x == 0 {
                    bc
                } else {
                    head[i][x * w + y]
                }
            });
        }
    }

    // Gauss-Seidel: O(0, ·) from the head planes.
    if K::IS_GS {
        for (y, slot) in sc.o_prev.iter_mut().enumerate() {
            *slot = if y == 0 || y == ny + 1 {
                Pack::splat(bc)
            } else {
                Pack::from_fn(|i| {
                    let x = (VL - 1 - i) * s;
                    if i == VL - 1 {
                        bc
                    } else {
                        sc.head[i + 1][x * w + y]
                    }
                })
            };
        }
    }
    x_max
}

/// Phase 2 of a 2-D temporal tile (portable): one vectorized pass per
/// outer row `x ∈ 1..=x_max`, producing `W(x+s)` from `W(x-1..=x+1)` with
/// the rotate-and-blend rule. `x_max` must come from [`tile_prologue`].
pub fn tile_steady<T: Scalar, const VL: usize, K: Kernel2d<T>>(
    g: &mut Grid2<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch2d<T, VL>,
    x_max: usize,
) {
    let (ny, p) = (g.ny(), g.pitch());
    let bc = g.boundary().value();
    let rlen = s + 2;
    let a = g.data_mut();
    let zero = Pack::<T, VL>::splat(T::ZERO);
    for x in 1..=x_max {
        let im1 = (x - 1) % rlen;
        let i0 = x % rlen;
        let ip1 = (x + 1) % rlen;
        let ips = (x + s) % rlen;
        // Detach the write row so the read rows can stay borrowed.
        let mut wrow = core::mem::take(&mut sc.ring[ips]);
        {
            let rm1 = &sc.ring[im1];
            let r0 = &sc.ring[i0];
            let rp1 = &sc.ring[ip1];
            let mut o_west = Pack::splat(bc); // O(x, 0): y-boundary column
                                              // West and centre packs are carried in registers (w ← m ← e).
            let mut w_pack = r0[0];
            let mut m_pack = r0[1];
            for y in 1..=ny {
                let e_pack = r0[y + 1];
                let corners = if K::IS_BOX {
                    [rm1[y - 1], rm1[y + 1], rp1[y - 1], rp1[y + 1]]
                } else {
                    [zero; 4]
                };
                let nb = Nbhd {
                    v: [
                        [corners[0], rm1[y], corners[1]],
                        [w_pack, m_pack, e_pack],
                        [corners[2], rp1[y], corners[3]],
                    ],
                    new_n: if K::IS_GS { sc.o_prev[y] } else { zero },
                    new_w: o_west,
                };
                w_pack = m_pack;
                m_pack = e_pack;
                let o = kern.pack(nb);
                a[x * p + y] = o.top();
                let bottom = a[(x + VL * s) * p + y];
                wrow[y] = o.shift_up_insert(bottom);
                if K::IS_GS {
                    sc.o_cur[y] = o;
                    o_west = o;
                }
            }
        }
        sc.ring[ips] = wrow;
        if K::IS_GS {
            core::mem::swap(&mut sc.o_prev, &mut sc.o_cur);
        }
    }
}

/// Phase 3 of a 2-D temporal tile: drain the surviving wavefront ring into
/// the tail planes and finish every level scalar-wise up to row `nx`.
/// `x_max` must match the value [`tile_prologue`] returned and the ring
/// must hold `W(j)` at slot `j % (s+2)` for `j ∈ x_max ..= x_max+s`, as
/// left behind by the steady state.
pub fn tile_epilogue<T: Scalar, const VL: usize, K: Kernel2d<T>>(
    g: &mut Grid2<T>,
    kern: &K,
    s: usize,
    sc: &mut Scratch2d<T, VL>,
    x_max: usize,
) {
    let (nx, ny, p) = (g.nx(), g.ny(), g.pitch());
    let bc = g.boundary().value();
    let w = ny + 2;
    let rlen = s + 2;
    let a = g.data_mut();
    for i in 1..VL {
        let base = x_max + (VL - 1 - i) * s;
        let rows = (i + 1) * s + 1; // rel 0 ..= (i+1)·s, last = halo row nx+1
        let (lo_planes, hi_planes) = sc.tail.split_at_mut(i);
        let plane = &mut hi_planes[0];
        // Halo prefill: y-halo columns of every row + the x = nx+1 row.
        for r in 0..rows {
            plane[r * w] = bc;
            plane[r * w + ny + 1] = bc;
        }
        for v in plane[(rows - 1) * w..rows * w].iter_mut() {
            *v = bc;
        }
        debug_assert_eq!(base + rows - 1, nx + 1);
        // Drain lane i of the surviving ring rows.
        for j in x_max..=x_max + s {
            let rel = j - x_max;
            let src = &sc.ring[j % rlen];
            for y in 1..=ny {
                plane[rel * w + y] = src[y].extract(i);
            }
        }
        // Scalar completion over rows base+s+1 ..= nx.
        for x in base + s + 1..=nx {
            let rel = x - base;
            for y in 1..=ny {
                let old = |dx: usize, dy: usize| -> T {
                    let (xx, yy) = (x + dx - 1, y + dy - 1);
                    if i == 1 {
                        a[xx * p + yy]
                    } else {
                        // base_{i-1} = base + s
                        lo_planes[i - 1][(xx - (base + s)) * w + yy]
                    }
                };
                let nb = Nbhd {
                    v: [
                        [old(0, 0), old(0, 1), old(0, 2)],
                        [old(1, 0), old(1, 1), old(1, 2)],
                        [old(2, 0), old(2, 1), old(2, 2)],
                    ],
                    new_n: plane[(rel - 1) * w + y],
                    new_w: plane[rel * w + y - 1],
                };
                plane[rel * w + y] = kern.scalar(nb);
            }
        }
    }

    // Final level VL over rows x_max+1 ..= nx, written into the array.
    {
        let below = &sc.tail[VL - 1]; // based at x_max
        for x in x_max + 1..=nx {
            let rel = x - x_max;
            for y in 1..=ny {
                let nb = Nbhd {
                    v: [
                        [
                            below[(rel - 1) * w + y - 1],
                            below[(rel - 1) * w + y],
                            below[(rel - 1) * w + y + 1],
                        ],
                        [
                            below[rel * w + y - 1],
                            below[rel * w + y],
                            below[rel * w + y + 1],
                        ],
                        [
                            below[(rel + 1) * w + y - 1],
                            below[(rel + 1) * w + y],
                            below[(rel + 1) * w + y + 1],
                        ],
                    ],
                    new_n: a[(x - 1) * p + y],
                    new_w: a[x * p + y - 1],
                };
                a[x * p + y] = kern.scalar(nb);
            }
        }
    }
}

/// Run `steps` time steps of a 2-D stencil with the temporal-vectorized
/// schedule, returning the final grid. Bit-identical to the scalar
/// reference sweeps.
pub fn run<T: Scalar, const VL: usize, K: Kernel2d<T>>(
    grid: &Grid2<T>,
    kern: &K,
    steps: usize,
    s: usize,
) -> Grid2<T> {
    assert_eq!(grid.halo(), 1, "temporal engines use halo width 1");
    let mut g = grid.clone();
    let mut sc = Scratch2d::<T, VL>::new(s, g.ny());
    for _ in 0..steps / VL {
        tile::<T, VL, K>(&mut g, kern, s, &mut sc);
    }
    for _ in 0..steps % VL {
        let (mut ra, mut rb) = (
            core::mem::take(&mut sc.row_a),
            core::mem::take(&mut sc.row_b),
        );
        scalar_step_inplace(&mut g, kern, &mut ra, &mut rb);
        sc.row_a = ra;
        sc.row_b = rb;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{BoxKern2d, GsKern2d, JacobiKern2d, LifeKern2d};
    use tempora_grid::{fill_random_2d, fill_random_life, Boundary};
    use tempora_stencil::reference;
    use tempora_stencil::{Box2dCoeffs, Gs2dCoeffs, Heat2dCoeffs, LifeRule};

    fn grid(nx: usize, ny: usize, seed: u64, b: f64) -> Grid2<f64> {
        let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(b));
        fill_random_2d(&mut g, seed, -1.0, 1.0);
        g
    }

    #[test]
    fn heat2d_matches_reference() {
        let c = Heat2dCoeffs::classic(0.12);
        let kern = JacobiKern2d(c);
        for &(nx, ny) in &[(8usize, 5usize), (9, 8), (17, 12), (32, 13), (40, 40)] {
            for steps in [4usize, 8] {
                let g = grid(nx, ny, (nx * ny) as u64, 0.25);
                let ours = run::<f64, 4, _>(&g, &kern, steps, 2);
                let gold = reference::heat2d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} ny={ny} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
                ours.check_canaries().unwrap();
            }
        }
    }

    #[test]
    fn heat2d_remainder_steps() {
        let c = Heat2dCoeffs::classic(0.2);
        let kern = JacobiKern2d(c);
        for steps in [0usize, 1, 2, 3, 5, 6, 7, 9] {
            let g = grid(21, 9, steps as u64, -1.0);
            let ours = run::<f64, 4, _>(&g, &kern, steps, 2);
            let gold = reference::heat2d(&g, c, steps);
            assert!(
                ours.interior_eq(&gold),
                "steps={steps} {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    fn heat2d_wider_strides() {
        let c = Heat2dCoeffs::classic(0.15);
        let kern = JacobiKern2d(c);
        for s in 2..=4 {
            let g = grid(35, 7, s as u64, 0.0);
            let ours = run::<f64, 4, _>(&g, &kern, 8, s);
            let gold = reference::heat2d(&g, c, 8);
            assert!(
                ours.interior_eq(&gold),
                "s={s} {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    fn heat2d_tiny_grid_fallback() {
        let c = Heat2dCoeffs::classic(0.25);
        let kern = JacobiKern2d(c);
        for nx in 1..8 {
            let g = grid(nx, 6, nx as u64, 0.5);
            let ours = run::<f64, 4, _>(&g, &kern, 5, 2);
            let gold = reference::heat2d(&g, c, 5);
            assert!(ours.interior_eq(&gold), "nx={nx}");
        }
    }

    #[test]
    fn box2d_matches_reference() {
        let c = Box2dCoeffs::new([[0.01, 0.07, 0.03], [0.09, 0.55, 0.08], [0.05, 0.06, 0.06]]);
        let kern = BoxKern2d(c);
        for &(nx, ny) in &[(16usize, 11usize), (25, 16), (33, 8)] {
            let g = grid(nx, ny, 77, 0.1);
            let ours = run::<f64, 4, _>(&g, &kern, 8, 2);
            let gold = reference::box2d(&g, c, 8);
            assert!(
                ours.interior_eq(&gold),
                "nx={nx} ny={ny} {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    fn life_matches_reference_vl8() {
        let rule = LifeRule::b2s23();
        let kern = LifeKern2d(rule);
        for &(nx, ny) in &[(20usize, 16usize), (33, 9), (48, 25)] {
            let mut g = Grid2::<i32>::new(nx, ny, 1, Boundary::Dirichlet(0));
            fill_random_life(&mut g, nx as u64, 0.35);
            for steps in [8usize, 11, 16] {
                let ours = run::<i32, 8, _>(&g, &kern, steps, 2);
                let gold = reference::life(&g, rule, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} ny={ny} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn life_conway_glider_still_works_vectorized() {
        let rule = LifeRule::conway();
        let kern = LifeKern2d(rule);
        let mut g = Grid2::<i32>::new(40, 40, 1, Boundary::Dirichlet(0));
        // Glider.
        for &(x, y) in &[(2, 3), (3, 4), (4, 2), (4, 3), (4, 4)] {
            g.set(x, y, 1);
        }
        let ours = run::<i32, 8, _>(&g, &kern, 24, 2);
        let gold = reference::life(&g, rule, 24);
        assert!(ours.interior_eq(&gold));
        // After 24 generations the glider has moved 6 cells diagonally.
        assert_eq!(ours.get(4 + 6, 3 + 6), 1);
    }

    #[test]
    fn gs2d_matches_reference() {
        let c = Gs2dCoeffs::classic(0.2);
        let kern = GsKern2d(c);
        for &(nx, ny) in &[(9usize, 6usize), (16, 16), (29, 10), (41, 23)] {
            for steps in [4usize, 7, 12] {
                let g = grid(nx, ny, (nx + ny + steps) as u64, -0.5);
                let ours = run::<f64, 4, _>(&g, &kern, steps, 2);
                let gold = reference::gs2d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} ny={ny} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn gs2d_asymmetric_coeffs() {
        let c = Gs2dCoeffs::new(0.31, 0.17, 0.23, 0.11, 0.13);
        let kern = GsKern2d(c);
        let g = grid(24, 31, 5, 2.0);
        let ours = run::<f64, 4, _>(&g, &kern, 8, 3);
        let gold = reference::gs2d(&g, c, 8);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }
}
