//! 64-byte aligned heap buffers.
//!
//! Stencil kernels want their arrays aligned to cache lines (and therefore
//! to every vector width in use). `Vec<T>` gives no alignment guarantee
//! beyond `align_of::<T>()`, so the workspace allocates through
//! [`AlignedBuf`], a minimal owned buffer with a fixed 64-byte alignment.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

use tempora_simd::Scalar;

/// Cache-line alignment used for every grid allocation (bytes).
pub const GRID_ALIGN: usize = 64;

/// Process-wide count of non-empty [`AlignedBuf`] allocations.
///
/// Every grid, tile buffer and aligned arena in the workspace allocates
/// through [`AlignedBuf::zeroed`], so the counter is a cheap way to prove
/// a hot path is allocation-free: snapshot it with [`alloc_count`] before
/// and after the path and assert the delta is zero. Monotonic; never
/// decremented on drop.
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// Snapshot the process-wide [`AlignedBuf`] allocation counter.
///
/// The counter is monotonic, so `alloc_count() - before` is the number of
/// aligned-buffer allocations performed since the `before` snapshot
/// (across all threads).
pub fn alloc_count() -> u64 {
    // Ordering: Relaxed — a monotonic statistics counter; callers compare
    // snapshots taken on one thread, no cross-thread data is published.
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// An owned, fixed-length, 64-byte aligned buffer of `T`.
///
/// Dereferences to `[T]`; all element access goes through ordinary slices,
/// so the only `unsafe` in this type is the allocation itself.
pub struct AlignedBuf<T: Scalar> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: AlignedBuf owns its allocation exclusively; T: Scalar is
// Send + Sync plain data.
unsafe impl<T: Scalar> Send for AlignedBuf<T> {}
// SAFETY: shared access is only through &[T].
unsafe impl<T: Scalar> Sync for AlignedBuf<T> {}

impl<T: Scalar> AlignedBuf<T> {
    /// Allocate `len` elements, zero-initialized (then overwritten with
    /// `T::ZERO`, which for every supported `T` is the all-zeroes pattern).
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedBuf {
                ptr: core::ptr::NonNull::<T>::dangling().as_ptr(),
                len: 0,
            };
        }
        // Every real grid/arena allocation in the workspace funnels
        // through here, so this one site lets tests inject allocation
        // failures anywhere (the k-th hit is as deterministic as the
        // ALLOC_COUNT the allocation-free tests rely on).
        tempora_failpoint::failpoint!("arena_alloc");
        // Ordering: Relaxed — a monotonic statistics counter; the count is
        // the only shared state and no other memory rides on this edge.
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0) and valid alignment.
        let raw = unsafe { alloc_zeroed(layout) } as *mut T;
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        AlignedBuf { ptr: raw, len }
    }

    /// Allocate `len` elements, all set to `fill`.
    pub fn filled(len: usize, fill: T) -> Self {
        let mut b = Self::zeroed(len);
        for v in b.iter_mut() {
            *v = fill;
        }
        b
    }

    fn layout(len: usize) -> Layout {
        let bytes = len * core::mem::size_of::<T>();
        // Panic-justification: a byte size overflowing isize::MAX cannot
        // be allocated on any supported target; there is no fallible
        // grid-construction API to surface it through, and real callers
        // run out of memory (handle_alloc_error) long before this bound.
        Layout::from_size_align(bytes, GRID_ALIGN).expect("grid allocation too large")
    }

    /// Number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Scalar> Deref for AlignedBuf<T> {
    type Target = [T];
    #[inline(always)]
    fn deref(&self) -> &[T] {
        // SAFETY: ptr is valid for len elements for the lifetime of self.
        unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Scalar> DerefMut for AlignedBuf<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: ptr is valid for len elements and we hold &mut self.
        unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl<T: Scalar> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated in `zeroed` with the identical layout.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl<T: Scalar> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        let mut b = Self::zeroed(self.len);
        b.copy_from_slice(self);
        b
    }
}

impl<T: Scalar> core::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "AlignedBuf(len={})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_zeroing() {
        for len in [1usize, 3, 64, 1000, 4097] {
            let b = AlignedBuf::<f64>::zeroed(len);
            assert_eq!(b.as_ptr() as usize % GRID_ALIGN, 0);
            assert_eq!(b.len(), len);
            assert!(b.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn filled_and_clone() {
        let b = AlignedBuf::<i32>::filled(100, 7);
        assert!(b.iter().all(|&v| v == 7));
        let mut c = b.clone();
        c[0] = 1;
        assert_eq!(b[0], 7);
        assert_eq!(c[0], 1);
        assert_eq!(c.as_ptr() as usize % GRID_ALIGN, 0);
    }

    #[test]
    fn zero_length_is_fine() {
        let b = AlignedBuf::<f64>::zeroed(0);
        assert!(b.is_empty());
        let c = b.clone();
        assert!(c.is_empty());
    }

    #[test]
    fn alloc_counter_tracks_nonempty_allocations() {
        // The counter is process-global and sibling tests allocate
        // concurrently, so assert a lower bound: our three allocations
        // must all have been counted.
        let before = alloc_count();
        let _a = AlignedBuf::<f64>::zeroed(8);
        let _b = AlignedBuf::<i32>::filled(5, 1);
        let _c = _a.clone();
        assert!(alloc_count() - before >= 3);
    }

    #[test]
    fn mutation_via_slice() {
        let mut b = AlignedBuf::<f64>::zeroed(16);
        for (i, v) in b.iter_mut().enumerate() {
            *v = i as f64;
        }
        assert_eq!(b[15], 15.0);
    }
}
