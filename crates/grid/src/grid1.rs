//! One-dimensional grids with ghost cells.

use crate::alloc::AlignedBuf;
use crate::{pad_len, Boundary};
use tempora_simd::Scalar;

/// A 1-D grid of `n` interior points with `h` ghost ("halo") cells on each
/// side, stored 64-byte aligned with the physical length padded to a
/// multiple of 8 elements.
///
/// Global coordinates run over `0..n+2h`; the interior is `h..h+n`. With
/// the paper's `h = 1` convention the interior is `1..=n` and the Dirichlet
/// boundary values live at `0` and `n+1`. Ghost cells are initialized from
/// the [`Boundary`] and are never written by correct kernels; the padding
/// beyond `n+2h` is filled with the canary pattern so tests can detect
/// out-of-bounds writes ([`Grid1::check_canaries`]).
#[derive(Clone, Debug)]
pub struct Grid1<T: Scalar> {
    buf: AlignedBuf<T>,
    n: usize,
    h: usize,
    bc: Boundary<T>,
}

impl<T: Scalar> Grid1<T> {
    /// Create a grid with all interior points set to `T::ZERO` and ghost
    /// cells set from the boundary condition.
    pub fn new(n: usize, h: usize, bc: Boundary<T>) -> Self {
        assert!(h >= 1, "stencil grids need at least one ghost cell");
        let total = n + 2 * h;
        let mut buf = AlignedBuf::zeroed(pad_len(total));
        for v in buf[total..].iter_mut() {
            *v = T::CANARY;
        }
        let mut g = Grid1 { buf, n, h, bc };
        g.refresh_halo();
        g
    }

    /// Interior length `n`.
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Halo width `h`.
    #[inline(always)]
    pub fn halo(&self) -> usize {
        self.h
    }

    /// The boundary condition the ghost cells encode.
    #[inline(always)]
    pub fn boundary(&self) -> Boundary<T> {
        self.bc
    }

    /// Logical length including ghost cells (`n + 2h`).
    #[inline(always)]
    pub fn total(&self) -> usize {
        self.n + 2 * self.h
    }

    /// The whole storage (ghost cells included, padding excluded) as a
    /// slice — the representation the kernels operate on.
    #[inline(always)]
    pub fn data(&self) -> &[T] {
        &self.buf[..self.n + 2 * self.h]
    }

    /// Mutable variant of [`Grid1::data`].
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [T] {
        let total = self.n + 2 * self.h;
        &mut self.buf[..total]
    }

    /// The interior as a slice.
    #[inline(always)]
    pub fn interior(&self) -> &[T] {
        &self.buf[self.h..self.h + self.n]
    }

    /// Mutable variant of [`Grid1::interior`].
    #[inline(always)]
    pub fn interior_mut(&mut self) -> &mut [T] {
        let (h, n) = (self.h, self.n);
        &mut self.buf[h..h + n]
    }

    /// Value at global coordinate `x`.
    #[inline(always)]
    pub fn get(&self, x: usize) -> T {
        self.buf[x]
    }

    /// Set the value at global coordinate `x`.
    #[inline(always)]
    pub fn set(&mut self, x: usize, v: T) {
        self.buf[x] = v;
    }

    /// (Re)write every ghost cell from the boundary condition.
    pub fn refresh_halo(&mut self) {
        let Boundary::Dirichlet(b) = self.bc;
        let (h, n) = (self.h, self.n);
        for x in 0..h {
            self.buf[x] = b;
        }
        for x in h + n..n + 2 * h {
            self.buf[x] = b;
        }
    }

    /// Fill the interior from a function of the interior offset `0..n`.
    pub fn fill_interior(&mut self, mut f: impl FnMut(usize) -> T) {
        for (i, v) in self.interior_mut().iter_mut().enumerate() {
            *v = f(i);
        }
    }

    /// Verify that no kernel wrote into the alignment padding.
    ///
    /// Returns `Err(index)` of the first clobbered padding slot.
    pub fn check_canaries(&self) -> Result<(), usize> {
        let total = self.total();
        for (i, v) in self.buf[total..].iter().enumerate() {
            if !v.is_canary() {
                return Err(total + i);
            }
        }
        Ok(())
    }

    /// Exact (bitwise for integers, `==` for floats) interior equality.
    pub fn interior_eq(&self, other: &Self) -> bool {
        self.n == other.n && self.interior() == other.interior()
    }

    /// Maximum absolute interior difference, as `f64`.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.n, other.n, "grid shape mismatch");
        self.interior()
            .iter()
            .zip(other.interior())
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Index of the first differing interior element, with both values —
    /// `None` when the interiors are identical. Used by tests to produce
    /// actionable failure messages.
    pub fn first_diff(&self, other: &Self) -> Option<(usize, T, T)> {
        self.interior()
            .iter()
            .zip(other.interior())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (&a, &b))| (i, a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_halo() {
        let g = Grid1::<f64>::new(10, 1, Boundary::Dirichlet(5.0));
        assert_eq!(g.total(), 12);
        assert_eq!(g.get(0), 5.0);
        assert_eq!(g.get(11), 5.0);
        assert_eq!(g.interior().len(), 10);
        assert!(g.interior().iter().all(|&v| v == 0.0));
        g.check_canaries().unwrap();
    }

    #[test]
    fn fill_and_compare() {
        let mut a = Grid1::<f64>::new(8, 1, Boundary::Dirichlet(0.0));
        let mut b = a.clone();
        a.fill_interior(|i| i as f64);
        b.fill_interior(|i| i as f64);
        assert!(a.interior_eq(&b));
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(3, 100.0);
        assert!(!a.interior_eq(&b));
        let (i, x, y) = a.first_diff(&b).unwrap();
        assert_eq!((i, x, y), (2, 2.0, 100.0));
        assert_eq!(a.max_abs_diff(&b), 98.0);
    }

    #[test]
    fn canary_detects_padding_writes() {
        let mut g = Grid1::<i32>::new(5, 1, Boundary::Dirichlet(0));
        g.check_canaries().unwrap();
        // Reach into the raw buffer beyond total(): simulate an OOB write.
        let total = g.total();
        g.buf[total] = 3;
        assert_eq!(g.check_canaries(), Err(total));
    }

    #[test]
    fn wide_halo() {
        let g = Grid1::<f64>::new(4, 3, Boundary::Dirichlet(-1.0));
        assert_eq!(g.total(), 10);
        for x in 0..3 {
            assert_eq!(g.get(x), -1.0);
        }
        for x in 7..10 {
            assert_eq!(g.get(x), -1.0);
        }
    }
}
