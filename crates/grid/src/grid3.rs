//! Three-dimensional grids with ghost cells and padded pencils.

use crate::alloc::AlignedBuf;
use crate::{pad_len, Boundary};
use tempora_simd::Scalar;

/// A 3-D grid of `nx × ny × nz` interior points with an `h`-cell ghost
/// shell.
///
/// Storage order is `x` (slowest), `y`, `z` (unit stride) — again matching
/// the paper: the outermost space loop `x` carries the temporal
/// vectorization, `z` is the contiguous dimension. Each `z`-pencil is
/// padded to a multiple of 8 elements; padding carries canaries.
#[derive(Clone, Debug)]
pub struct Grid3<T: Scalar> {
    buf: AlignedBuf<T>,
    nx: usize,
    ny: usize,
    nz: usize,
    h: usize,
    pitch: usize,
    plane: usize,
    bc: Boundary<T>,
}

impl<T: Scalar> Grid3<T> {
    /// Create a grid with interior `T::ZERO` and ghost shell from `bc`.
    pub fn new(nx: usize, ny: usize, nz: usize, h: usize, bc: Boundary<T>) -> Self {
        assert!(h >= 1, "stencil grids need at least one ghost cell");
        let pitch = pad_len(nz + 2 * h);
        let plane = (ny + 2 * h) * pitch;
        let slabs = nx + 2 * h;
        let mut buf = AlignedBuf::zeroed(slabs * plane);
        let w = nz + 2 * h;
        for xy in 0..slabs * (ny + 2 * h) {
            for v in buf[xy * pitch + w..(xy + 1) * pitch].iter_mut() {
                *v = T::CANARY;
            }
        }
        let mut g = Grid3 {
            buf,
            nx,
            ny,
            nz,
            h,
            pitch,
            plane,
            bc,
        };
        g.refresh_halo();
        g
    }

    /// Interior extent in `x` (slowest dimension).
    #[inline(always)]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior extent in `y`.
    #[inline(always)]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Interior extent in `z` (unit stride).
    #[inline(always)]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Halo width.
    #[inline(always)]
    pub fn halo(&self) -> usize {
        self.h
    }

    /// Physical `z`-pencil length (multiple of 8).
    #[inline(always)]
    pub fn pitch(&self) -> usize {
        self.pitch
    }

    /// Elements per `x`-slab (`(ny+2h) * pitch`).
    #[inline(always)]
    pub fn plane(&self) -> usize {
        self.plane
    }

    /// The boundary condition the ghost shell encodes.
    #[inline(always)]
    pub fn boundary(&self) -> Boundary<T> {
        self.bc
    }

    /// Flat index of global `(x, y, z)`.
    #[inline(always)]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        x * self.plane + y * self.pitch + z
    }

    /// Value at global `(x, y, z)`.
    #[inline(always)]
    pub fn get(&self, x: usize, y: usize, z: usize) -> T {
        self.buf[self.idx(x, y, z)]
    }

    /// Set the value at global `(x, y, z)`.
    #[inline(always)]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.idx(x, y, z);
        self.buf[i] = v;
    }

    /// Entire storage as a flat slice.
    #[inline(always)]
    pub fn data(&self) -> &[T] {
        &self.buf
    }

    /// Mutable variant of [`Grid3::data`].
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.buf
    }

    /// (Re)write the ghost shell from the boundary condition.
    pub fn refresh_halo(&mut self) {
        let Boundary::Dirichlet(b) = self.bc;
        let (h, nx, ny, nz) = (self.h, self.nx, self.ny, self.nz);
        for x in 0..nx + 2 * h {
            for y in 0..ny + 2 * h {
                for z in 0..nz + 2 * h {
                    let ghost =
                        x < h || x >= h + nx || y < h || y >= h + ny || z < h || z >= h + nz;
                    if ghost {
                        self.set(x, y, z, b);
                    }
                }
            }
        }
    }

    /// Fill the interior from a function of interior offsets.
    pub fn fill_interior(&mut self, mut f: impl FnMut(usize, usize, usize) -> T) {
        let h = self.h;
        for i in 0..self.nx {
            for j in 0..self.ny {
                for k in 0..self.nz {
                    self.set(h + i, h + j, h + k, f(i, j, k));
                }
            }
        }
    }

    /// Verify pencil-padding canaries; `Err(flat_index)` on clobber.
    pub fn check_canaries(&self) -> Result<(), usize> {
        let w = self.nz + 2 * self.h;
        let pencils = (self.nx + 2 * self.h) * (self.ny + 2 * self.h);
        for p in 0..pencils {
            for z in w..self.pitch {
                let i = p * self.pitch + z;
                if !self.buf[i].is_canary() {
                    return Err(i);
                }
            }
        }
        Ok(())
    }

    /// Exact interior equality.
    pub fn interior_eq(&self, other: &Self) -> bool {
        if (self.nx, self.ny, self.nz) != (other.nx, other.ny, other.nz) {
            return false;
        }
        let (h, oh) = (self.h, other.h);
        for i in 0..self.nx {
            for j in 0..self.ny {
                for k in 0..self.nz {
                    if self.get(h + i, h + j, h + k) != other.get(oh + i, oh + j, oh + k) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Maximum absolute interior difference, as `f64`.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!((self.nx, self.ny, self.nz), (other.nx, other.ny, other.nz));
        let (h, oh) = (self.h, other.h);
        let mut m = 0.0f64;
        for i in 0..self.nx {
            for j in 0..self.ny {
                for k in 0..self.nz {
                    let d = (self.get(h + i, h + j, h + k).to_f64()
                        - other.get(oh + i, oh + j, oh + k).to_f64())
                    .abs();
                    m = m.max(d);
                }
            }
        }
        m
    }

    /// First differing interior element `(i, j, k, self, other)`, if any.
    pub fn first_diff(&self, other: &Self) -> Option<(usize, usize, usize, T, T)> {
        let (h, oh) = (self.h, other.h);
        for i in 0..self.nx {
            for j in 0..self.ny {
                for k in 0..self.nz {
                    let (a, b) = (
                        self.get(h + i, h + j, h + k),
                        other.get(oh + i, oh + j, oh + k),
                    );
                    if a != b {
                        return Some((i, j, k, a, b));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_shell() {
        let g = Grid3::<f64>::new(3, 4, 5, 1, Boundary::Dirichlet(2.0));
        assert_eq!(g.pitch() % 8, 0);
        // Shell corners and faces.
        assert_eq!(g.get(0, 0, 0), 2.0);
        assert_eq!(g.get(4, 5, 6), 2.0);
        assert_eq!(g.get(0, 2, 3), 2.0);
        assert_eq!(g.get(2, 0, 3), 2.0);
        assert_eq!(g.get(2, 2, 0), 2.0);
        // Interior.
        assert_eq!(g.get(1, 1, 1), 0.0);
        assert_eq!(g.get(3, 4, 5), 0.0);
        g.check_canaries().unwrap();
    }

    #[test]
    fn fill_compare() {
        let mut a = Grid3::<i64>::new(2, 2, 2, 1, Boundary::Dirichlet(0));
        let mut b = a.clone();
        a.fill_interior(|i, j, k| (i * 100 + j * 10 + k) as i64);
        b.fill_interior(|i, j, k| (i * 100 + j * 10 + k) as i64);
        assert!(a.interior_eq(&b));
        b.set(2, 1, 2, 999);
        assert_eq!(a.first_diff(&b), Some((1, 0, 1, 101, 999)));
        assert_eq!(a.max_abs_diff(&b), 898.0);
    }

    #[test]
    fn canary_detects_pencil_padding_writes() {
        let mut g = Grid3::<f64>::new(2, 2, 2, 1, Boundary::Dirichlet(0.0));
        let i = g.idx(1, 1, 4); // w = 4 < pitch = 8
        g.data_mut()[i] = 1.0;
        assert_eq!(g.check_canaries(), Err(i));
    }
}
