//! # tempora-grid — aligned grid containers for stencil computations
//!
//! Data substrate of the *tempora* workspace (reproduction of "Temporal
//! Vectorization for Stencils", SC'21): cache-line aligned 1/2/3-D grids
//! with ghost cells, Dirichlet boundary handling, canary-guarded padding,
//! double buffering for Jacobi updates, and seeded random initialization
//! for workloads.
//!
//! Layout conventions (shared by every kernel in the workspace):
//!
//! * the **outermost** space dimension `x` is the slow dimension and the
//!   one the temporal scheme vectorizes; the innermost dimension is unit
//!   stride;
//! * ghost cells of width `h ≥ 1` surround the interior and encode the
//!   boundary condition; kernels read but never write them;
//! * physical row/pencil lengths are padded to a multiple of 8 elements
//!   and the padding is poisoned with canary values, so tests can prove
//!   kernels stay in bounds.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod grid1;
pub mod grid2;
pub mod grid3;

pub use alloc::{alloc_count, AlignedBuf, GRID_ALIGN};
pub use grid1::Grid1;
pub use grid2::Grid2;
pub use grid3::Grid3;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempora_simd::Scalar;

/// Boundary condition for the ghost cells.
///
/// The paper evaluates non-periodic stencils (constant boundaries), so
/// Dirichlet is the only condition the optimized engines support; it is an
/// enum so further conditions can be added without breaking the API.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Boundary<T> {
    /// Ghost cells hold the given constant at every time step.
    Dirichlet(T),
}

impl<T: Scalar> Boundary<T> {
    /// The value a ghost cell holds under this condition.
    #[inline(always)]
    pub fn value(self) -> T {
        match self {
            Boundary::Dirichlet(v) => v,
        }
    }
}

/// Round a length up to the next multiple of 8 elements (64 bytes for
/// `f64`, 32 bytes for `i32`) so rows and pencils stay aligned.
#[inline(always)]
pub fn pad_len(len: usize) -> usize {
    len.div_ceil(8) * 8
}

/// A pair of equally-shaped buffers for Jacobi-style ping-pong updates.
///
/// `src` is the time-`t` state, `dst` the time-`t+1` state being produced;
/// [`DoubleBuffer::swap`] advances time.
#[derive(Clone, Debug)]
pub struct DoubleBuffer<G> {
    cur: G,
    next: G,
}

impl<G: Clone> DoubleBuffer<G> {
    /// Create a double buffer from the initial state; the second copy is a
    /// clone (its interior will be fully overwritten by the first step).
    pub fn new(initial: G) -> Self {
        let next = initial.clone();
        DoubleBuffer { cur: initial, next }
    }

    /// The current (time-`t`) state.
    #[inline(always)]
    pub fn src(&self) -> &G {
        &self.cur
    }

    /// The next (time-`t+1`) state being written.
    #[inline(always)]
    pub fn dst_mut(&mut self) -> &mut G {
        &mut self.next
    }

    /// Borrow source and destination simultaneously.
    #[inline(always)]
    pub fn pair_mut(&mut self) -> (&G, &mut G) {
        (&self.cur, &mut self.next)
    }

    /// Advance time: the freshly written state becomes current.
    #[inline(always)]
    pub fn swap(&mut self) {
        core::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Consume the buffer, returning the current state.
    pub fn into_current(self) -> G {
        self.cur
    }
}

/// Deterministic seeded RNG used by all workload initializers, so every
/// experiment is reproducible bit-for-bit.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Fill a 1-D grid's interior with uniform random values in `[lo, hi)`.
pub fn fill_random_1d(g: &mut Grid1<f64>, seed: u64, lo: f64, hi: f64) {
    let mut rng = seeded_rng(seed);
    g.fill_interior(|_| rng.gen_range(lo..hi));
}

/// Fill a 2-D grid's interior with uniform random values in `[lo, hi)`.
pub fn fill_random_2d(g: &mut Grid2<f64>, seed: u64, lo: f64, hi: f64) {
    let mut rng = seeded_rng(seed);
    g.fill_interior(|_, _| rng.gen_range(lo..hi));
}

/// Fill a 3-D grid's interior with uniform random values in `[lo, hi)`.
pub fn fill_random_3d(g: &mut Grid3<f64>, seed: u64, lo: f64, hi: f64) {
    let mut rng = seeded_rng(seed);
    g.fill_interior(|_, _, _| rng.gen_range(lo..hi));
}

/// Fill a 2-D integer grid with random 0/1 cells alive with probability
/// `p_alive` (the Game-of-Life workload initializer).
pub fn fill_random_life(g: &mut Grid2<i32>, seed: u64, p_alive: f64) {
    let mut rng = seeded_rng(seed);
    g.fill_interior(|_, _| if rng.gen_bool(p_alive) { 1 } else { 0 });
}

/// Generate a random byte-alphabet sequence for the LCS workload.
pub fn random_sequence(len: usize, alphabet: u8, seed: u64) -> Vec<u8> {
    let mut rng = seeded_rng(seed);
    (0..len).map(|_| rng.gen_range(0..alphabet)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_len_multiples() {
        assert_eq!(pad_len(0), 0);
        assert_eq!(pad_len(1), 8);
        assert_eq!(pad_len(8), 8);
        assert_eq!(pad_len(9), 16);
        assert_eq!(pad_len(1000), 1000);
        assert_eq!(pad_len(1001), 1008);
    }

    #[test]
    fn double_buffer_swaps() {
        let g = Grid1::<f64>::new(4, 1, Boundary::Dirichlet(0.0));
        let mut db = DoubleBuffer::new(g);
        db.dst_mut().set(1, 42.0);
        assert_eq!(db.src().get(1), 0.0);
        db.swap();
        assert_eq!(db.src().get(1), 42.0);
        let (src, dst) = db.pair_mut();
        assert_eq!(src.get(1), 42.0);
        dst.set(1, 7.0);
        db.swap();
        assert_eq!(db.into_current().get(1), 7.0);
    }

    #[test]
    fn random_fills_are_deterministic() {
        let mut a = Grid1::new(32, 1, Boundary::Dirichlet(0.0));
        let mut b = Grid1::new(32, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut a, 42, -1.0, 1.0);
        fill_random_1d(&mut b, 42, -1.0, 1.0);
        assert!(a.interior_eq(&b));
        fill_random_1d(&mut b, 43, -1.0, 1.0);
        assert!(!a.interior_eq(&b));
        assert!(a.interior().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn life_fill_is_binary() {
        let mut g = Grid2::<i32>::new(16, 16, 1, Boundary::Dirichlet(0));
        fill_random_life(&mut g, 7, 0.35);
        let mut alive = 0;
        for i in 0..16 {
            for j in 0..16 {
                let v = g.get(1 + i, 1 + j);
                assert!(v == 0 || v == 1);
                alive += v;
            }
        }
        assert!(alive > 0 && alive < 256);
    }

    #[test]
    fn random_sequence_alphabet() {
        let s = random_sequence(1000, 4, 1);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|&c| c < 4));
        assert_eq!(s, random_sequence(1000, 4, 1));
    }

    #[test]
    fn boundary_value() {
        assert_eq!(Boundary::Dirichlet(3.5f64).value(), 3.5);
    }
}
