//! Two-dimensional grids with ghost cells and padded rows.

use crate::alloc::AlignedBuf;
use crate::{pad_len, Boundary};
use tempora_simd::Scalar;

/// A 2-D grid of `nx × ny` interior points with an `h`-cell ghost frame.
///
/// Storage is row-major with `x` as the slow (outer) dimension — matching
/// the paper's loop nests, where the *outermost* space loop (`x`) is the
/// temporally vectorized one and `y` is the unit-stride inner loop. Each
/// row is padded to a multiple of 8 elements ([`Grid2::pitch`]) so row
/// starts stay 64-byte aligned; padding carries canary values.
#[derive(Clone, Debug)]
pub struct Grid2<T: Scalar> {
    buf: AlignedBuf<T>,
    nx: usize,
    ny: usize,
    h: usize,
    pitch: usize,
    bc: Boundary<T>,
}

impl<T: Scalar> Grid2<T> {
    /// Create a grid with interior `T::ZERO` and ghost frame from `bc`.
    pub fn new(nx: usize, ny: usize, h: usize, bc: Boundary<T>) -> Self {
        assert!(h >= 1, "stencil grids need at least one ghost cell");
        let rows = nx + 2 * h;
        let pitch = pad_len(ny + 2 * h);
        let mut buf = AlignedBuf::zeroed(rows * pitch);
        // Poison the row padding.
        for x in 0..rows {
            for v in buf[x * pitch + ny + 2 * h..(x + 1) * pitch].iter_mut() {
                *v = T::CANARY;
            }
        }
        let mut g = Grid2 {
            buf,
            nx,
            ny,
            h,
            pitch,
            bc,
        };
        g.refresh_halo();
        g
    }

    /// Interior extent in the outer (`x`) dimension.
    #[inline(always)]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior extent in the inner, unit-stride (`y`) dimension.
    #[inline(always)]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Halo width.
    #[inline(always)]
    pub fn halo(&self) -> usize {
        self.h
    }

    /// Physical row length in elements (`>= ny + 2h`, multiple of 8).
    #[inline(always)]
    pub fn pitch(&self) -> usize {
        self.pitch
    }

    /// The boundary condition the ghost frame encodes.
    #[inline(always)]
    pub fn boundary(&self) -> Boundary<T> {
        self.bc
    }

    /// Number of rows including ghost rows (`nx + 2h`).
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.nx + 2 * self.h
    }

    /// Flat index of `(x, y)` in global coordinates.
    #[inline(always)]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        x * self.pitch + y
    }

    /// Value at global `(x, y)`.
    #[inline(always)]
    pub fn get(&self, x: usize, y: usize) -> T {
        self.buf[self.idx(x, y)]
    }

    /// Set the value at global `(x, y)`.
    #[inline(always)]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        let i = self.idx(x, y);
        self.buf[i] = v;
    }

    /// Entire storage as a flat slice (kernels index with
    /// `x * pitch + y`).
    #[inline(always)]
    pub fn data(&self) -> &[T] {
        &self.buf
    }

    /// Mutable variant of [`Grid2::data`].
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.buf
    }

    /// Row `x` (ghost columns included, padding excluded).
    #[inline(always)]
    pub fn row(&self, x: usize) -> &[T] {
        let w = self.ny + 2 * self.h;
        &self.buf[x * self.pitch..x * self.pitch + w]
    }

    /// Mutable variant of [`Grid2::row`].
    #[inline(always)]
    pub fn row_mut(&mut self, x: usize) -> &mut [T] {
        let w = self.ny + 2 * self.h;
        let p = self.pitch;
        &mut self.buf[x * p..x * p + w]
    }

    /// (Re)write the ghost frame from the boundary condition.
    pub fn refresh_halo(&mut self) {
        let Boundary::Dirichlet(b) = self.bc;
        let (h, nx, ny) = (self.h, self.nx, self.ny);
        let w = ny + 2 * h;
        for x in 0..nx + 2 * h {
            let ghost_row = x < h || x >= h + nx;
            let row = self.row_mut(x);
            if ghost_row {
                for v in row.iter_mut() {
                    *v = b;
                }
            } else {
                row[..h].fill(b);
                row[h + ny..w].fill(b);
            }
        }
    }

    /// Fill the interior from a function of interior offsets
    /// `(0..nx, 0..ny)`.
    pub fn fill_interior(&mut self, mut f: impl FnMut(usize, usize) -> T) {
        let h = self.h;
        for i in 0..self.nx {
            for j in 0..self.ny {
                self.set(h + i, h + j, f(i, j));
            }
        }
    }

    /// Verify the row padding canaries; `Err(flat_index)` on clobber.
    pub fn check_canaries(&self) -> Result<(), usize> {
        let w = self.ny + 2 * self.h;
        for x in 0..self.rows() {
            for y in w..self.pitch {
                let i = self.idx(x, y);
                if !self.buf[i].is_canary() {
                    return Err(i);
                }
            }
        }
        Ok(())
    }

    /// Exact interior equality.
    pub fn interior_eq(&self, other: &Self) -> bool {
        if (self.nx, self.ny) != (other.nx, other.ny) {
            return false;
        }
        let h = self.h;
        let oh = other.h;
        for i in 0..self.nx {
            for j in 0..self.ny {
                if self.get(h + i, h + j) != other.get(oh + i, oh + j) {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute interior difference, as `f64`.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!((self.nx, self.ny), (other.nx, other.ny));
        let (h, oh) = (self.h, other.h);
        let mut m = 0.0f64;
        for i in 0..self.nx {
            for j in 0..self.ny {
                let d =
                    (self.get(h + i, h + j).to_f64() - other.get(oh + i, oh + j).to_f64()).abs();
                m = m.max(d);
            }
        }
        m
    }

    /// First differing interior element `(i, j, self, other)`, if any.
    pub fn first_diff(&self, other: &Self) -> Option<(usize, usize, T, T)> {
        let (h, oh) = (self.h, other.h);
        for i in 0..self.nx {
            for j in 0..self.ny {
                let (a, b) = (self.get(h + i, h + j), other.get(oh + i, oh + j));
                if a != b {
                    return Some((i, j, a, b));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_pitch_halo() {
        let g = Grid2::<f64>::new(4, 5, 1, Boundary::Dirichlet(9.0));
        assert_eq!(g.rows(), 6);
        assert_eq!(g.pitch() % 8, 0);
        assert!(g.pitch() >= 7);
        // Ghost frame.
        for y in 0..7 {
            assert_eq!(g.get(0, y), 9.0);
            assert_eq!(g.get(5, y), 9.0);
        }
        for x in 0..6 {
            assert_eq!(g.get(x, 0), 9.0);
            assert_eq!(g.get(x, 6), 9.0);
        }
        // Interior zero.
        assert_eq!(g.get(1, 1), 0.0);
        g.check_canaries().unwrap();
    }

    #[test]
    fn fill_compare_diff() {
        let mut a = Grid2::<i32>::new(3, 3, 1, Boundary::Dirichlet(0));
        let mut b = a.clone();
        a.fill_interior(|i, j| (i * 10 + j) as i32);
        b.fill_interior(|i, j| (i * 10 + j) as i32);
        assert!(a.interior_eq(&b));
        b.set(2, 3, -7);
        assert!(!a.interior_eq(&b));
        assert_eq!(a.first_diff(&b), Some((1, 2, 12, -7)));
        assert_eq!(a.max_abs_diff(&b), 19.0);
    }

    #[test]
    fn rows_are_aligned_and_padded() {
        let g = Grid2::<f64>::new(8, 6, 1, Boundary::Dirichlet(0.0));
        for x in 0..g.rows() {
            let r = g.row(x);
            assert_eq!(r.len(), 8);
            assert_eq!(r.as_ptr() as usize % 64, 0);
        }
    }

    #[test]
    fn canary_detects_row_padding_writes() {
        let mut g = Grid2::<f64>::new(2, 2, 1, Boundary::Dirichlet(0.0));
        let i = g.idx(1, 5); // first padding column of row 1 (w = 4)
        g.data_mut()[i] = 0.0;
        assert_eq!(g.check_canaries(), Err(i));
    }
}
