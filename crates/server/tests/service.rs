//! End-to-end service tests: a real `Server` on loopback TCP (and a
//! Unix socket), driven through `tempora_client`. These pin the
//! acceptance-critical behaviors: cached-path replies are
//! bitwise-identical to a fresh in-process plan with zero rebuilds, and
//! hostile frames produce `ErrorReply`s without killing the connection.

use tempora_client::Client;
use tempora_proto::{state_digest, ErrorCode, Frame, JobSpec, Problem, Tiling, PROTO_VERSION};
use tempora_server::{fresh_state, CacheConfig, Server, ServerConfig};
use tempora_stencil::{Heat1dCoeffs, Heat2dCoeffs};

fn start_tcp(cache: CacheConfig) -> (Server, String) {
    let server = Server::start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        uds: None,
        cache,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp configured").to_string();
    (server, addr)
}

fn heat_spec() -> JobSpec {
    JobSpec::new(Problem::heat1d(2048, 16, Heat1dCoeffs::classic(0.25)))
}

#[test]
fn served_run_matches_fresh_in_process_plan_bitwise() {
    let (server, addr) = start_tcp(CacheConfig::default());
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let spec = heat_spec();
    let seed = 0xfeed;

    // Reference: a fresh plan, built and run in this process.
    let mut state = fresh_state(&spec.problem, seed);
    let report = spec
        .config
        .plan_builder()
        .build(&spec.problem)
        .expect("build reference plan")
        .run(&mut state)
        .expect("run reference plan");

    let first = client.run_steps(&spec, seed).expect("first run");
    assert!(!first.cache_hit, "cold cache");
    assert_eq!(first.plan_builds, 1);
    assert_eq!(
        first.digest,
        state_digest(&state),
        "bitwise-identical state"
    );
    assert_eq!(first.steps, report.steps as u64);
    assert_eq!(first.engine, report.engine);
    assert_eq!(first.threads, report.threads as u32);

    // Second request: served from cache, zero rebuilds, same bits.
    let second = client.run_steps(&spec, seed).expect("second run");
    assert!(second.cache_hit, "warm cache");
    assert_eq!(second.plan_builds, 1, "cache hit must not rebuild");
    assert_eq!(second.digest, first.digest);
    let stats = server.cache().stats();
    assert_eq!(stats.builds, 1);
    server.shutdown(std::time::Duration::from_secs(5));
}

#[test]
fn submit_prepares_without_running() {
    let (server, addr) = start_tcp(CacheConfig::default());
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let spec = heat_spec();
    let prepared = client.submit(&spec).expect("submit");
    assert_eq!(prepared.steps, 0, "submit does not run");
    assert_eq!(prepared.plan_builds, 1);
    // The prepared plan is a cache hit for the first actual run.
    let run = client.run_steps(&spec, 1).expect("run after submit");
    assert!(run.cache_hit);
    assert_eq!(run.plan_builds, 1);
    server.shutdown(std::time::Duration::from_secs(5));
}

#[test]
fn fan_out_over_many_connections_builds_once() {
    let (server, addr) = start_tcp(CacheConfig::default());
    let spec = heat_spec();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).expect("connect");
            (0..4u64)
                .map(|i| client.run_steps(&spec, t * 100 + i).expect("run").digest)
                .collect::<Vec<_>>()
        }));
    }
    for h in handles {
        h.join().expect("agent thread");
    }
    let stats = server.cache().stats();
    assert_eq!(stats.builds, 1, "16 requests, one compiled plan");
    assert_eq!(stats.hits + stats.misses, 16);
    assert!(stats.hits >= 15, "at most the first lookup may miss");
    server.shutdown(std::time::Duration::from_secs(5));
}

#[test]
fn distinct_specs_do_not_share_plans_and_seeds_matter() {
    let (server, addr) = start_tcp(CacheConfig::default());
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let heat = heat_spec();
    let mut tiled = heat;
    tiled.config.tiling = Tiling::Ghost {
        block: 64,
        height: 4,
    };
    tiled.config.threads = 2;
    let heat2d = JobSpec::new(Problem::heat2d(96, 64, 8, Heat2dCoeffs::classic(0.125)));

    let a = client.run_steps(&heat, 7).expect("heat");
    let b = client.run_steps(&tiled, 7).expect("tiled heat");
    let c = client.run_steps(&heat2d, 7).expect("heat2d");
    // Same problem, same seed, different plan shape: identical physics,
    // identical bits (the tiled run reproduces the untiled run).
    assert_eq!(a.digest, b.digest);
    assert_ne!(a.digest, c.digest);
    assert_eq!(server.cache().stats().builds, 3);
    // Different seed, different initial state, different bits.
    let a2 = client.run_steps(&heat, 8).expect("heat reseeded");
    assert_ne!(a.digest, a2.digest);
    server.shutdown(std::time::Duration::from_secs(5));
}

#[test]
fn small_cache_evicts_and_rebuilds_transparently() {
    let (server, addr) = start_tcp(CacheConfig {
        shards: 1,
        capacity: 2,
        ..CacheConfig::default()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let specs: Vec<JobSpec> = [1024usize, 1152, 1280, 1408]
        .iter()
        .map(|&n| JobSpec::new(Problem::heat1d(n, 8, Heat1dCoeffs::classic(0.25))))
        .collect();
    let first: Vec<u64> = specs
        .iter()
        .map(|s| client.run_steps(s, 3).expect("cold run").digest)
        .collect();
    // Sweep again: everything still answers, evicted entries rebuild to
    // the same bits.
    for (spec, want) in specs.iter().zip(&first) {
        assert_eq!(client.run_steps(spec, 3).expect("warm run").digest, *want);
    }
    let stats = server.cache().stats();
    assert!(stats.evictions >= 2, "cap 2 must evict, saw {stats:?}");
    assert!(stats.builds >= 4);
    server.shutdown(std::time::Duration::from_secs(5));
}

#[test]
fn unknown_version_gets_error_reply_and_connection_survives() {
    use std::io::Write;
    use tempora_proto::{read_frame, write_frame};

    let (server, addr) = start_tcp(CacheConfig::default());
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect raw");
    // Hand-corrupt a frame's version byte and ship it raw.
    let good = Frame::RunSteps {
        request_id: 5,
        spec: heat_spec(),
        seed: 1,
    };
    let mut body = good.encode_body();
    body[0] = PROTO_VERSION + 9;
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .and_then(|()| stream.write_all(&body))
        .expect("send corrupt frame");
    let reply = read_frame(&mut stream).expect("read reply").expect("frame");
    let Frame::ErrorReply { code, .. } = reply else {
        panic!("wanted ErrorReply, got {reply:?}");
    };
    assert_eq!(code, ErrorCode::UnsupportedVersion);
    // A garbage tag on the same connection: another ErrorReply.
    let mut bad_tag = good.encode_body();
    bad_tag[1] = 250;
    stream
        .write_all(&(bad_tag.len() as u32).to_le_bytes())
        .and_then(|()| stream.write_all(&bad_tag))
        .expect("send bad tag");
    let reply = read_frame(&mut stream).expect("read reply").expect("frame");
    assert!(matches!(
        reply,
        Frame::ErrorReply {
            code: ErrorCode::BadFrame,
            ..
        }
    ));
    // The same connection still serves real requests afterwards.
    write_frame(&mut stream, &good).expect("send good frame");
    let reply = read_frame(&mut stream).expect("read reply").expect("frame");
    assert!(matches!(reply, Frame::ReportReply { request_id: 5, .. }));
    server.shutdown(std::time::Duration::from_secs(5));
}

#[test]
fn uds_roundtrip() {
    let path = std::env::temp_dir().join(format!("tempora-serve-test-{}.sock", std::process::id()));
    let server = Server::start(ServerConfig {
        tcp: None,
        uds: Some(path.clone()),
        cache: CacheConfig::default(),
        ..ServerConfig::default()
    })
    .expect("bind uds");
    let mut client = Client::connect_uds(&path).expect("connect uds");
    let spec = heat_spec();
    let a = client.run_steps(&spec, 11).expect("uds run");
    let b = client.run_steps(&spec, 11).expect("uds run 2");
    assert_eq!(a.digest, b.digest);
    assert!(b.cache_hit);
    server.shutdown(std::time::Duration::from_secs(5));
}
