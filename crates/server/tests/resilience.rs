//! Resilience tests: graceful drain, slow-loris defense, admission
//! control, queue shedding, stale-socket reclaim, and the self-healing
//! client surviving a server restart. These pin the PR's acceptance
//! behaviors: `shutdown(deadline)` joins every connection thread, a
//! late request during drain gets `GoingAway`, a stalled half-frame is
//! cut with `DeadlineExceeded`, and a retried `RunSteps` is
//! bitwise-identical to a fresh one.

use std::io::Write;
use std::time::Duration;
use tempora_client::retry::{RetryPolicy, RetryingClient, Target};
use tempora_client::{Client, ClientError};
use tempora_proto::{read_frame, state_digest, write_frame, ErrorCode, Frame, JobSpec, Problem};
use tempora_server::{fresh_state, CacheConfig, ResilienceConfig, Server, ServerConfig};
use tempora_stencil::Heat1dCoeffs;

fn heat_spec() -> JobSpec {
    JobSpec::new(Problem::heat1d(2048, 16, Heat1dCoeffs::classic(0.25)))
}

/// A spec whose run takes long enough to still be in flight when the
/// test calls `shutdown` a few milliseconds after sending it.
fn heavy_spec() -> JobSpec {
    JobSpec::new(Problem::heat1d(1 << 17, 192, Heat1dCoeffs::classic(0.25)))
}

fn start_tcp(resilience: ResilienceConfig, cache: CacheConfig) -> (Server, String) {
    let server = Server::start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        uds: None,
        cache,
        resilience,
    })
    .expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp configured").to_string();
    (server, addr)
}

fn uds_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "tempora-resilience-{tag}-{}.sock",
        std::process::id()
    ))
}

#[test]
fn slow_loris_half_frame_is_cut_with_deadline_exceeded() {
    let (server, addr) = start_tcp(
        ResilienceConfig {
            poll_tick: Duration::from_millis(10),
            stall_timeout: Duration::from_millis(150),
            ..ResilienceConfig::default()
        },
        CacheConfig::default(),
    );
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect raw");
    // A length prefix promising 64 bytes, then two body bytes, then
    // silence: a classic slow-loris half-frame.
    stream.write_all(&64u32.to_le_bytes()).expect("prefix");
    stream.write_all(&[1, 2]).expect("partial body");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client read timeout");
    let reply = read_frame(&mut stream)
        .expect("typed goodbye")
        .expect("frame");
    assert!(
        matches!(
            reply,
            Frame::ErrorReply {
                request_id: 0,
                code: ErrorCode::DeadlineExceeded,
                ..
            }
        ),
        "wanted DeadlineExceeded, got {reply:?}"
    );
    // The server hung up after the goodbye.
    assert!(read_frame(&mut stream).expect("clean close").is_none());
    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean, "stalled conn already reaped: {report:?}");
}

#[test]
fn shutdown_drains_in_flight_work_and_late_request_gets_going_away() {
    let (server, addr) = start_tcp(
        ResilienceConfig {
            poll_tick: Duration::from_millis(100),
            ..ResilienceConfig::default()
        },
        CacheConfig::default(),
    );
    let spec = heavy_spec();
    let seed = 0xd00d;

    // Reference digest from a fresh in-process plan.
    let mut state = fresh_state(&spec.problem, seed);
    spec.config
        .plan_builder()
        .build(&spec.problem)
        .expect("reference build")
        .run(&mut state)
        .expect("reference run");
    let want_digest = state_digest(&state);

    // Connection A: a heavy run that will be in flight during shutdown.
    let addr_a = addr.clone();
    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect_tcp(&addr_a).expect("connect A");
        client.run_steps(&spec, seed)
    });

    // Connection B: idle until the drain farewell arrives.
    let mut b = std::net::TcpStream::connect(&addr).expect("connect B");
    b.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client read timeout");

    // Give A time to get its request onto the server.
    std::thread::sleep(Duration::from_millis(30));
    let handle = std::thread::spawn(move || server.shutdown(Duration::from_secs(10)));

    // B receives the unsolicited farewell (request id 0)...
    let farewell = read_frame(&mut b).expect("farewell").expect("frame");
    assert!(
        matches!(
            farewell,
            Frame::ErrorReply {
                request_id: 0,
                code: ErrorCode::GoingAway,
                ..
            }
        ),
        "wanted GoingAway farewell, got {farewell:?}"
    );
    // ...and a request racing the drain still gets a *correlated*
    // GoingAway instead of a dead socket.
    write_frame(
        &mut b,
        &Frame::RunSteps {
            request_id: 9,
            spec: heat_spec(),
            seed: 1,
        },
    )
    .expect("late request");
    let late = read_frame(&mut b).expect("late reply").expect("frame");
    assert!(
        matches!(
            late,
            Frame::ErrorReply {
                request_id: 9,
                code: ErrorCode::GoingAway,
                ..
            }
        ),
        "wanted correlated GoingAway, got {late:?}"
    );

    // The in-flight run completed with the right bits: drain waited.
    let reply = in_flight
        .join()
        .expect("thread A")
        .expect("in-flight reply");
    assert_eq!(reply.digest, want_digest, "drained run must be complete");

    // And shutdown joined everything without force-closing.
    let report = handle.join().expect("shutdown thread");
    assert!(report.clean, "no stragglers expected: {report:?}");
    assert_eq!(report.drained, 2, "both connections drained: {report:?}");
    assert!(
        report.elapsed < Duration::from_secs(10),
        "drained within deadline: {report:?}"
    );
}

#[test]
fn admission_control_answers_busy_beyond_max_connections() {
    let (server, addr) = start_tcp(
        ResilienceConfig {
            max_connections: 1,
            retry_after_ms: 40,
            ..ResilienceConfig::default()
        },
        CacheConfig::default(),
    );
    // First connection occupies the only slot (a completed request
    // guarantees the acceptor registered it).
    let mut first = Client::connect_tcp(&addr).expect("connect first");
    first.run_steps(&heat_spec(), 1).expect("first run");

    // Second connection is turned away with a typed, hinted Busy.
    let mut second = std::net::TcpStream::connect(&addr).expect("connect second");
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client read timeout");
    let reply = read_frame(&mut second).expect("busy reply").expect("frame");
    let Frame::ErrorReply {
        request_id: 0,
        code: ErrorCode::Busy { retry_after_ms },
        ..
    } = reply
    else {
        panic!("wanted Busy, got {reply:?}");
    };
    assert_eq!(retry_after_ms, 40);
    assert!(read_frame(&mut second)
        .expect("rejected conn closes")
        .is_none());

    let stats = server.stats();
    assert_eq!(stats.conns_rejected, 1);
    assert_eq!(stats.conns_opened, 1);
    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
}

#[test]
fn full_entry_queue_sheds_with_busy() {
    // max_queue_depth 0: every run is shed — the deterministic probe of
    // the shed path.
    let (server, addr) = start_tcp(
        ResilienceConfig::default(),
        CacheConfig {
            max_queue_depth: 0,
            busy_retry_ms: 15,
            ..CacheConfig::default()
        },
    );
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let err = client.run_steps(&heat_spec(), 1).expect_err("must shed");
    let ClientError::Server { code, .. } = err else {
        panic!("wanted a typed server error, got {err:?}");
    };
    assert_eq!(code, ErrorCode::Busy { retry_after_ms: 15 });
    assert!(code.retryable());
    assert_eq!(server.stats().shed, 1);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn stale_uds_socket_is_reclaimed_but_live_one_is_not() {
    let path = uds_path("stale");
    let _ = std::fs::remove_file(&path);
    let config = ServerConfig {
        tcp: None,
        uds: Some(path.clone()),
        cache: CacheConfig::default(),
        resilience: ResilienceConfig::default(),
    };

    // A live server's socket must not be stolen.
    let live = Server::start(config.clone()).expect("first bind");
    let err = match Server::start(config.clone()) {
        Err(err) => err,
        Ok(_) => panic!("second bind over a live socket must fail"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    live.shutdown(Duration::from_secs(5));
    assert!(!path.exists(), "shutdown removes the socket file");

    // A stale file (listener long gone) is reclaimed transparently.
    drop(std::os::unix::net::UnixListener::bind(&path).expect("make stale socket"));
    assert!(path.exists(), "stale file is on disk");
    let server = Server::start(config).expect("bind over stale socket");
    let mut client = Client::connect_uds(&path).expect("connect");
    client.run_steps(&heat_spec(), 1).expect("serves normally");
    server.shutdown(Duration::from_secs(5));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dropping_a_server_without_shutdown_cleans_up_best_effort() {
    let path = uds_path("drop");
    let _ = std::fs::remove_file(&path);
    {
        let server = Server::start(ServerConfig {
            tcp: None,
            uds: Some(path.clone()),
            cache: CacheConfig::default(),
            resilience: ResilienceConfig::default(),
        })
        .expect("bind");
        let mut client = Client::connect_uds(&path).expect("connect");
        client.run_steps(&heat_spec(), 1).expect("run");
        drop(server);
    }
    assert!(!path.exists(), "Drop removes the socket file");
    // The address is immediately rebindable.
    let server = Server::start(ServerConfig {
        tcp: None,
        uds: Some(path.clone()),
        cache: CacheConfig::default(),
        resilience: ResilienceConfig::default(),
    })
    .expect("rebind after drop");
    server.shutdown(Duration::from_secs(5));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn retrying_client_survives_a_server_restart_with_identical_bits() {
    let path = uds_path("restart");
    let _ = std::fs::remove_file(&path);
    let config = ServerConfig {
        tcp: None,
        uds: Some(path.clone()),
        cache: CacheConfig::default(),
        resilience: ResilienceConfig::default(),
    };
    let spec = heat_spec();
    let seed = 0xabcd;

    let first_gen = Server::start(config.clone()).expect("first server");
    let mut client = RetryingClient::new(
        Target::Uds(path.clone()),
        RetryPolicy {
            max_attempts: 64,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
            jitter_seed: 99,
        },
    )
    .with_io_timeout(Duration::from_secs(2));

    let before = client.run_steps(&spec, seed).expect("run against gen 1");

    // Full restart: drain gen 1 (its socket file goes away), then bring
    // up gen 2 on the same path while the client keeps calling.
    let report = first_gen.shutdown(Duration::from_secs(5));
    assert!(report.clean, "gen 1 drains: {report:?}");
    let second_gen = Server::start(config).expect("second server");

    let after = client.run_steps(&spec, seed).expect("run against gen 2");
    assert_eq!(
        after.digest, before.digest,
        "retried run must be bitwise-identical to the original"
    );
    assert!(!after.cache_hit, "gen 2 started cold");
    let stats = client.stats();
    assert!(
        stats.reconnects >= 1,
        "the restart must have forced a reconnect: {stats:?}"
    );
    second_gen.shutdown(Duration::from_secs(5));
    let _ = std::fs::remove_file(&path);
}
