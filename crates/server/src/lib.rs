//! # tempora-server — the long-running solver service
//!
//! `tempora-serve` turns the prepared-statement lifecycle
//! (`Problem → Plan → run`) into a service: plans are compiled once,
//! interned in a sharded concurrent [`PlanCache`], and reused clone-free
//! across every connection that asks for the same canonical
//! [`JobSpec`](tempora_proto::JobSpec). The paper's economics — pay the
//! temporal-reorg/plan cost once, stream steady-state steps at SIMD
//! speed — applied across requests instead of within one process run.
//!
//! The network layer is a thread-per-connection loop over TCP and/or
//! Unix sockets speaking the [`tempora_proto`] length-prefixed frames,
//! hardened for the long-running deployment regime:
//!
//! - **Graceful drain** — every connection is registered in a
//!   registry slot; [`Server::shutdown`] stops accepting, lets
//!   in-flight replies flush, sends each live connection a final
//!   [`ErrorCode::GoingAway`], force-closes stragglers at the deadline
//!   and **joins** every connection thread (nothing is detached). The
//!   [`DrainReport`] says how clean the exit was.
//! - **Deadlines** — sockets carry read/write timeouts; the read loop
//!   polls through [`FrameAccum`] so an idle peer is reaped after
//!   [`ResilienceConfig::idle_timeout`] and a half-frame slow-loris is
//!   cut with [`ErrorCode::DeadlineExceeded`] after
//!   [`ResilienceConfig::stall_timeout`].
//! - **Admission control** — at most
//!   [`ResilienceConfig::max_connections`] live connections; excess
//!   accepts are answered [`ErrorCode::Busy`] (with a retry hint) and
//!   closed, and a cache entry whose batching queue is full sheds with
//!   `Busy` instead of queueing unbounded work.
//!
//! All of it is counted in [`StatsSnapshot`] via [`Server::stats`].

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
mod fill;

pub use cache::{CacheConfig, PlanCache, StatsSnapshot};
pub use fill::fresh_state;

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tempora_failpoint::failpoint;
use tempora_plan::PlanError;
use tempora_proto::{write_frame, DecodeError, ErrorCode, Frame, FrameAccum, FramePoll, WireError};

/// Why the server could not answer a request with a `ReportReply`.
#[derive(Debug)]
pub enum ServeError {
    /// `PlanBuilder::build` rejected the spec.
    Build(PlanError),
    /// `Plan::run` (or a pre-run check) failed without poisoning.
    Run(PlanError),
    /// The run panicked and poisoned the cached plan; the payload is the
    /// captured panic message. The entry recovers on the next request.
    Poisoned(String),
    /// The work was shed before it was accepted (queue depth bound);
    /// retry after the hinted backoff.
    Busy {
        /// Suggested minimum client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// An internal invariant failed.
    Internal(&'static str),
}

impl ServeError {
    /// The wire-level error category for this failure.
    #[must_use]
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::Build(_) => ErrorCode::BuildFailed,
            ServeError::Run(_) => ErrorCode::RunFailed,
            ServeError::Poisoned(_) => ErrorCode::Poisoned,
            ServeError::Busy { retry_after_ms } => ErrorCode::Busy {
                retry_after_ms: *retry_after_ms,
            },
            ServeError::Internal(_) => ErrorCode::Internal,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Build(e) => write!(f, "plan build failed: {e}"),
            ServeError::Run(e) => write!(f, "plan run failed: {e}"),
            ServeError::Poisoned(p) => write!(f, "cached plan poisoned by panic: {p}"),
            ServeError::Busy { retry_after_ms } => {
                write!(f, "server busy, retry after {retry_after_ms}ms")
            }
            ServeError::Internal(m) => write!(f, "internal server error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Overload and slow-peer defense knobs. The defaults suit a local
/// service under test harness load; production deployments tune them.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceConfig {
    /// Maximum simultaneously live connections; accepts beyond this are
    /// answered [`ErrorCode::Busy`] and closed. `0` means unlimited.
    pub max_connections: usize,
    /// Socket read-poll tick: how often a blocked connection thread
    /// wakes to check the drain flag and its idle/stall budgets. Also
    /// the grace window for late requests after the drain farewell.
    pub poll_tick: Duration,
    /// How long a connection may sit at a frame boundary with no bytes
    /// of a next request before it is reaped.
    pub idle_timeout: Duration,
    /// How long a half-received frame may stall before the peer is
    /// declared slow-loris and cut with [`ErrorCode::DeadlineExceeded`].
    pub stall_timeout: Duration,
    /// Socket write timeout — bounds how long a reply flush may block on
    /// a peer that stopped reading.
    pub write_timeout: Duration,
    /// The `retry_after_ms` hint carried by admission-control `Busy`
    /// replies.
    pub retry_after_ms: u32,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            max_connections: 256,
            poll_tick: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(60),
            stall_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            retry_after_ms: 25,
        }
    }
}

/// Server shape: where to listen, cache shape, resilience knobs.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// TCP bind address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub tcp: Option<String>,
    /// Unix-socket path. A *stale* socket file (no listener behind it)
    /// is reclaimed; a live one fails the bind with `AddrInUse`.
    pub uds: Option<PathBuf>,
    /// Plan-cache shape.
    pub cache: CacheConfig,
    /// Overload and slow-peer defense.
    pub resilience: ResilienceConfig,
}

/// What [`Server::shutdown`] observed while draining.
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainReport {
    /// Connections that exited on their own within the deadline.
    pub drained: usize,
    /// Connections force-closed when the deadline expired.
    pub forced: usize,
    /// True when every connection drained without force-closing.
    pub clean: bool,
    /// Wall-clock time the drain took (including the final joins).
    pub elapsed: Duration,
}

/// Network-layer counters (all `Relaxed`: statistics, never used to
/// order memory accesses).
#[derive(Debug, Default)]
struct NetStats {
    conns_opened: AtomicU64,
    conns_rejected: AtomicU64,
    deadline_closes: AtomicU64,
    idle_closes: AtomicU64,
    going_away: AtomicU64,
}

/// One live connection's socket, force-closable from the registry.
enum RawStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-socket connection.
    Uds(UnixStream),
}

impl RawStream {
    fn try_clone(&self) -> std::io::Result<RawStream> {
        Ok(match self {
            RawStream::Tcp(s) => RawStream::Tcp(s.try_clone()?),
            RawStream::Uds(s) => RawStream::Uds(s.try_clone()?),
        })
    }

    fn set_timeouts(&self, read: Duration, write: Duration) -> std::io::Result<()> {
        match self {
            RawStream::Tcp(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
            RawStream::Uds(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
        }
    }

    /// Tear the socket down in both directions, waking any thread
    /// blocked on it. Errors are ignored: the peer may already be gone.
    fn force_close(&self) {
        match self {
            RawStream::Tcp(s) => drop(s.shutdown(Shutdown::Both)),
            RawStream::Uds(s) => drop(s.shutdown(Shutdown::Both)),
        }
    }
}

impl Read for RawStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            RawStream::Tcp(s) => s.read(buf),
            RawStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for RawStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            RawStream::Tcp(s) => s.write(buf),
            RawStream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            RawStream::Tcp(s) => s.flush(),
            RawStream::Uds(s) => s.flush(),
        }
    }
}

/// Per-connection slot shared between the connection thread and the
/// registry (for drain observation and force-close).
struct ConnShared {
    /// A clone of the connection's socket, used only to force-close.
    stream: RawStream,
    /// Set by the connection thread on every exit path (incl. panic).
    done: AtomicBool,
}

struct ConnEntry {
    shared: Arc<ConnShared>,
    handle: JoinHandle<()>,
}

/// The connection registry: one slot per live connection plus the
/// drain flag every connection thread polls.
struct Registry {
    draining: AtomicBool,
    live: AtomicUsize,
    next_id: AtomicU64,
    conns: Mutex<Vec<ConnEntry>>,
    stats: NetStats,
}

/// Lock a std mutex, continuing through lock poisoning: the registry's
/// vec stays consistent even if a holder panicked mid-push.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    fn new() -> Registry {
        Registry {
            draining: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
            stats: NetStats::default(),
        }
    }

    /// Join and drop every entry whose thread already finished. Called
    /// from the accept loops so the registry stays bounded by the number
    /// of concurrent connections.
    fn reap_finished(&self) {
        let finished: Vec<ConnEntry> = {
            let mut conns = lock(&self.conns);
            let mut rest = Vec::with_capacity(conns.len());
            let mut finished = Vec::new();
            for entry in conns.drain(..) {
                // Acquire: pairs with the Release in ConnGuard::drop so a
                // `done` observation also sees the thread's final writes.
                if entry.shared.done.load(Ordering::Acquire) {
                    finished.push(entry);
                } else {
                    rest.push(entry);
                }
            }
            *conns = rest;
            finished
        };
        for entry in finished {
            // The thread has already set `done`; join returns promptly.
            let _ = entry.handle.join();
        }
    }
}

/// Ensures the registry sees the connection as finished on every exit
/// path of its thread, including panics (an injected `conn_frame` panic
/// *is* the "connection dropped mid-stream" fault).
struct ConnGuard {
    registry: Arc<Registry>,
    shared: Arc<ConnShared>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        // The registry holds a clone of this connection's socket, so the
        // thread's own fd closing is not peer-visible; shut the socket
        // down explicitly so the client sees EOF on every exit path
        // (including a panicking one).
        self.shared.stream.force_close();
        // Release: pairs with the Acquire loads in `reap_finished` and
        // the drain wait loop — whoever sees `done == true` also sees
        // everything this thread wrote before exiting.
        self.shared.done.store(true, Ordering::Release);
        // Ordering: Relaxed — `live` is an admission-control estimate;
        // the gate tolerates momentary over/undershoot by one.
        self.registry.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A running server: accept loops and connection threads live on
/// background threads until [`Server::shutdown`] drains and joins them.
/// Dropping an un-shut-down server performs a best-effort teardown (stop
/// accepting, force-close connections, remove the socket file) but only
/// joins the acceptors — call `shutdown` for the guaranteed-join drain.
pub struct Server {
    cache: Arc<PlanCache>,
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
    acceptors: Vec<JoinHandle<()>>,
    torn_down: bool,
}

/// Reclaim `path` only if no live server answers it: a successful probe
/// connect means the address is genuinely in use and binding must fail;
/// a refused connect means the file is a stale leftover and is removed.
fn reclaim_stale_uds(path: &std::path::Path) -> std::io::Result<()> {
    match UnixStream::connect(path) {
        Ok(_) => Err(std::io::Error::new(
            std::io::ErrorKind::AddrInUse,
            format!("{} is served by a live listener", path.display()),
        )),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        // Connection refused (or any other probe failure): nobody is
        // accepting behind the file, so it is stale and safe to remove.
        Err(_) => std::fs::remove_file(path),
    }
}

impl Server {
    /// Bind the configured listeners and start accepting.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let cache = Arc::new(PlanCache::new(config.cache));
        let registry = Arc::new(Registry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let resilience = config.resilience;
        let mut acceptors = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr.as_str())?;
            tcp_addr = Some(listener.local_addr()?);
            let cache = Arc::clone(&cache);
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            acceptors.push(std::thread::spawn(move || {
                accept_loop(TcpIncoming(listener), cache, registry, stop, resilience)
            }));
        }
        let mut uds_path = None;
        if let Some(path) = &config.uds {
            reclaim_stale_uds(path)?;
            let listener = UnixListener::bind(path)?;
            uds_path = Some(path.clone());
            let cache = Arc::clone(&cache);
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            acceptors.push(std::thread::spawn(move || {
                accept_loop(UdsIncoming(listener), cache, registry, stop, resilience)
            }));
        }
        Ok(Server {
            cache,
            registry,
            stop,
            tcp_addr,
            uds_path,
            acceptors,
            torn_down: false,
        })
    }

    /// The bound TCP address (with the resolved ephemeral port), if TCP
    /// was configured.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The shared plan cache (for in-process inspection in tests and
    /// the bench harness).
    #[must_use]
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Cache counters plus the network-layer counters (connections
    /// opened/rejected, deadline and idle closes, `GoingAway` farewells).
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let mut s = self.cache.stats();
        // Relaxed throughout: statistics reads, no ordering required.
        s.conns_opened = self.registry.stats.conns_opened.load(Ordering::Relaxed);
        // Relaxed: statistic.
        s.conns_rejected = self.registry.stats.conns_rejected.load(Ordering::Relaxed);
        // Relaxed: statistic.
        s.deadline_closes = self.registry.stats.deadline_closes.load(Ordering::Relaxed);
        // Relaxed: statistic.
        s.idle_closes = self.registry.stats.idle_closes.load(Ordering::Relaxed);
        // Relaxed: statistic.
        s.going_away = self.registry.stats.going_away.load(Ordering::Relaxed);
        s
    }

    /// Currently live connections (admission-control view).
    #[must_use]
    pub fn live_connections(&self) -> usize {
        // Relaxed: an estimate is all callers need.
        self.registry.live.load(Ordering::Relaxed)
    }

    /// Gracefully drain and stop the server.
    ///
    /// Stops accepting, raises the drain flag (every connection answers
    /// its next wakeup with a final [`ErrorCode::GoingAway`] and closes,
    /// after flushing any in-flight reply), waits up to `deadline` for
    /// connections to exit on their own, force-closes the stragglers'
    /// sockets, and then **joins every connection thread** — when this
    /// returns, no thread of this server is left running.
    pub fn shutdown(mut self, deadline: Duration) -> DrainReport {
        self.teardown(Some(deadline))
    }

    /// Shared teardown. `drain: Some(deadline)` is the graceful path
    /// (wait + join everything); `None` is the best-effort `Drop` path
    /// (stop accepting, force-close, join only the acceptors — never
    /// block a destructor on a long-running solver step).
    fn teardown(&mut self, drain: Option<Duration>) -> DrainReport {
        if self.torn_down {
            return DrainReport::default();
        }
        self.torn_down = true;
        let start = Instant::now();
        // Release: pairs with the Acquire in the accept loops so a loop
        // woken by the poke below observes the flag.
        self.stop.store(true, Ordering::Release);
        // Release: pairs with the Acquire polls in connection threads —
        // a thread observing `draining` also observes a fully-built
        // registry.
        self.registry.draining.store(true, Ordering::Release);
        // Poke each listener so its blocking accept() returns.
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(path) = &self.uds_path {
            let _ = UnixStream::connect(path);
        }
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
        // Wait for connections to drain on their own.
        let deadline_at = start + drain.unwrap_or(Duration::ZERO);
        loop {
            let all_done = lock(&self.registry.conns)
                .iter()
                // Acquire: pairs with the Release in ConnGuard::drop.
                .all(|e| e.shared.done.load(Ordering::Acquire));
            if all_done || Instant::now() >= deadline_at {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Force-close stragglers and take ownership of every entry.
        let entries: Vec<ConnEntry> = lock(&self.registry.conns).drain(..).collect();
        let mut report = DrainReport::default();
        for entry in &entries {
            // Acquire: pairs with the Release in ConnGuard::drop.
            if entry.shared.done.load(Ordering::Acquire) {
                report.drained += 1;
            } else {
                report.forced += 1;
                entry.shared.stream.force_close();
            }
        }
        report.clean = report.forced == 0;
        if drain.is_some() {
            // The graceful path joins everyone: force-closed sockets make
            // blocked reads/writes fail, so each thread exits as soon as
            // its current solver step (if any) completes.
            for entry in entries {
                let _ = entry.handle.join();
            }
        }
        // Remove the socket file last, so a restarting instance's
        // stale-probe never races our own listener teardown.
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
        report.elapsed = start.elapsed();
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort teardown for servers dropped without `shutdown`:
        // stop accepting, poke and join the acceptors, force-close every
        // connection (their threads exit promptly on the dead socket,
        // but are not joined — a destructor must not block on a solver
        // step), and remove the Unix-socket file.
        let _ = self.teardown(None);
    }
}

/// Accept-source abstraction so TCP and UDS share one accept loop.
trait Incoming {
    fn accept_one(&self) -> std::io::Result<RawStream>;
}

struct TcpIncoming(TcpListener);

impl Incoming for TcpIncoming {
    fn accept_one(&self) -> std::io::Result<RawStream> {
        let (stream, _) = self.0.accept()?;
        stream.set_nodelay(true)?;
        Ok(RawStream::Tcp(stream))
    }
}

struct UdsIncoming(UnixListener);

impl Incoming for UdsIncoming {
    fn accept_one(&self) -> std::io::Result<RawStream> {
        Ok(RawStream::Uds(self.0.accept()?.0))
    }
}

fn accept_loop(
    listener: impl Incoming,
    cache: Arc<PlanCache>,
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
    cfg: ResilienceConfig,
) {
    loop {
        let stream = listener.accept_one();
        // Acquire: pairs with the Release store in `teardown`.
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        registry.reap_finished();
        if stream
            .set_timeouts(cfg.poll_tick, cfg.write_timeout)
            .is_err()
        {
            continue;
        }
        // Admission control: beyond the connection cap, answer Busy with
        // a retry hint and close instead of spawning a thread.
        // Relaxed: the gate tolerates off-by-one racing with ConnGuard.
        if cfg.max_connections > 0 && registry.live.load(Ordering::Relaxed) >= cfg.max_connections {
            registry
                .stats
                .conns_rejected
                // Relaxed: statistic.
                .fetch_add(1, Ordering::Relaxed);
            let mut w = BufWriter::new(stream);
            let _ = write_frame(
                &mut w,
                &Frame::ErrorReply {
                    request_id: 0,
                    code: ErrorCode::Busy {
                        retry_after_ms: cfg.retry_after_ms,
                    },
                    message: "connection limit reached".into(),
                },
            );
            continue;
        }
        // Relaxed: see above — estimate, not a synchronization point.
        registry.live.fetch_add(1, Ordering::Relaxed);
        // Relaxed: statistic.
        registry.stats.conns_opened.fetch_add(1, Ordering::Relaxed);
        // Relaxed: a unique id is all that is needed, not ordering.
        let conn_id = registry.next_id.fetch_add(1, Ordering::Relaxed);
        let Ok(for_registry) = stream.try_clone() else {
            // Relaxed: undo of the estimate above.
            registry.live.fetch_sub(1, Ordering::Relaxed);
            continue;
        };
        let shared = Arc::new(ConnShared {
            stream: for_registry,
            done: AtomicBool::new(false),
        });
        let cache = Arc::clone(&cache);
        let thread_registry = Arc::clone(&registry);
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let _guard = ConnGuard {
                registry: Arc::clone(&thread_registry),
                shared: thread_shared,
            };
            failpoint!("conn_accept", conn_id);
            serve_connection(stream, conn_id, &cache, &thread_registry, &cfg);
        });
        lock(&registry.conns).push(ConnEntry { shared, handle });
    }
}

/// One connection's request→reply loop with the resilience rules.
///
/// Recoverable decode failures (truncated body, unknown version/tag,
/// malformed payload — the body was fully consumed, the stream is in
/// sync) answer an `ErrorReply` and keep serving; I/O errors, oversized
/// length prefixes, idle/stall deadline hits and the drain flag close.
fn serve_connection(
    stream: RawStream,
    conn_id: u64,
    cache: &PlanCache,
    registry: &Registry,
    cfg: &ResilienceConfig,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut accum = FrameAccum::new();
    let mut idle_since = Instant::now();
    let mut stall_since: Option<Instant> = None;
    loop {
        // Acquire: pairs with the Release store in `teardown`.
        if registry.draining.load(Ordering::Acquire) {
            drain_farewell(&mut reader, &mut writer, &mut accum, registry, cfg);
            return;
        }
        match accum.poll(&mut reader) {
            Ok(FramePoll::Frame(frame)) => {
                stall_since = None;
                failpoint!("conn_frame", conn_id);
                let reply = dispatch(frame, cache);
                failpoint!("conn_reply", conn_id);
                if write_frame(&mut writer, &reply).is_err() {
                    return;
                }
                idle_since = Instant::now();
            }
            Ok(FramePoll::Eof) => return,
            Ok(FramePoll::Pending { mid_frame }) => {
                if mid_frame {
                    let started = *stall_since.get_or_insert_with(Instant::now);
                    if started.elapsed() >= cfg.stall_timeout {
                        // Slow-loris: a half-frame sat past the stall
                        // budget. The stream cannot be resynchronized —
                        // best-effort typed goodbye, then close (which
                        // releases this thread).
                        registry
                            .stats
                            .deadline_closes
                            // Relaxed: statistic.
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = write_frame(
                            &mut writer,
                            &Frame::ErrorReply {
                                request_id: 0,
                                code: ErrorCode::DeadlineExceeded,
                                message: "frame stalled past the read deadline".into(),
                            },
                        );
                        return;
                    }
                } else {
                    stall_since = None;
                    if idle_since.elapsed() >= cfg.idle_timeout {
                        // Relaxed: statistic.
                        registry.stats.idle_closes.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
            Err(err) => {
                if err.recoverable() {
                    let code = match &err {
                        WireError::Decode(DecodeError::UnknownVersion { .. }) => {
                            ErrorCode::UnsupportedVersion
                        }
                        _ => ErrorCode::BadFrame,
                    };
                    let reply = Frame::ErrorReply {
                        request_id: 0,
                        code,
                        message: err.to_string(),
                    };
                    if write_frame(&mut writer, &reply).is_err() {
                        return;
                    }
                    idle_since = Instant::now();
                    continue;
                }
                return;
            }
        }
    }
}

/// The drain-window endgame for one connection: flush a final
/// uncorrelated [`ErrorCode::GoingAway`], then grant one poll tick of
/// grace in which a late request (already in flight when the farewell
/// was sent) is answered `GoingAway` *with its own id*, and close.
fn drain_farewell(
    reader: &mut impl Read,
    writer: &mut impl Write,
    accum: &mut FrameAccum,
    registry: &Registry,
    cfg: &ResilienceConfig,
) {
    // Relaxed: statistic.
    registry.stats.going_away.fetch_add(1, Ordering::Relaxed);
    let farewell = Frame::ErrorReply {
        request_id: 0,
        code: ErrorCode::GoingAway,
        message: "server draining for shutdown".into(),
    };
    if write_frame(writer, &farewell).is_err() {
        return;
    }
    // One grace tick: a request that raced the farewell still gets a
    // correlated GoingAway instead of a dead socket.
    let grace_until = Instant::now() + cfg.poll_tick;
    loop {
        match accum.poll(reader) {
            Ok(FramePoll::Frame(frame)) => {
                let _ = write_frame(
                    writer,
                    &Frame::ErrorReply {
                        request_id: frame.request_id(),
                        code: ErrorCode::GoingAway,
                        message: "server draining for shutdown".into(),
                    },
                );
                return;
            }
            Ok(FramePoll::Pending { .. }) if Instant::now() < grace_until => continue,
            _ => return,
        }
    }
}

/// Answer one decoded request frame.
fn dispatch(frame: Frame, cache: &PlanCache) -> Frame {
    match frame {
        Frame::SubmitProblem { request_id, spec } => match cache.prepare(&spec) {
            Ok(reply) => Frame::ReportReply { request_id, reply },
            Err(e) => Frame::ErrorReply {
                request_id,
                code: e.code(),
                message: e.to_string(),
            },
        },
        Frame::RunSteps {
            request_id,
            spec,
            seed,
        } => match cache.run(&spec, seed) {
            Ok(reply) => Frame::ReportReply { request_id, reply },
            Err(e) => Frame::ErrorReply {
                request_id,
                code: e.code(),
                message: e.to_string(),
            },
        },
        // Reply frames arriving at the server are a client bug.
        Frame::ReportReply { request_id, .. } | Frame::ErrorReply { request_id, .. } => {
            Frame::ErrorReply {
                request_id,
                code: ErrorCode::BadFrame,
                message: "reply frame sent to server".into(),
            }
        }
    }
}
