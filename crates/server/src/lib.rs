//! # tempora-server — the long-running solver service
//!
//! `tempora-serve` turns the prepared-statement lifecycle
//! (`Problem → Plan → run`) into a service: plans are compiled once,
//! interned in a sharded concurrent [`PlanCache`], and reused clone-free
//! across every connection that asks for the same canonical
//! [`JobSpec`](tempora_proto::JobSpec). The paper's economics — pay the
//! temporal-reorg/plan cost once, stream steady-state steps at SIMD
//! speed — applied across requests instead of within one process run.
//!
//! The network layer is deliberately small: a hand-rolled
//! thread-per-connection loop over TCP and/or Unix sockets speaking the
//! [`tempora_proto`] length-prefixed frames. All concurrency of interest
//! lives in the cache (batching, poisoning recovery), not the sockets.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
mod fill;

pub use cache::{CacheConfig, PlanCache, StatsSnapshot};
pub use fill::fresh_state;

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tempora_plan::PlanError;
use tempora_proto::{read_frame, write_frame, DecodeError, ErrorCode, Frame, WireError};

/// Why the server could not answer a request with a `ReportReply`.
#[derive(Debug)]
pub enum ServeError {
    /// `PlanBuilder::build` rejected the spec.
    Build(PlanError),
    /// `Plan::run` (or a pre-run check) failed without poisoning.
    Run(PlanError),
    /// The run panicked and poisoned the cached plan; the payload is the
    /// captured panic message. The entry recovers on the next request.
    Poisoned(String),
    /// An internal invariant failed.
    Internal(&'static str),
}

impl ServeError {
    /// The wire-level error category for this failure.
    #[must_use]
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::Build(_) => ErrorCode::BuildFailed,
            ServeError::Run(_) => ErrorCode::RunFailed,
            ServeError::Poisoned(_) => ErrorCode::Poisoned,
            ServeError::Internal(_) => ErrorCode::Internal,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Build(e) => write!(f, "plan build failed: {e}"),
            ServeError::Run(e) => write!(f, "plan run failed: {e}"),
            ServeError::Poisoned(p) => write!(f, "cached plan poisoned by panic: {p}"),
            ServeError::Internal(m) => write!(f, "internal server error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Server shape: where to listen and how big the plan cache is.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// TCP bind address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub tcp: Option<String>,
    /// Unix-socket path (removed and re-bound on start).
    pub uds: Option<PathBuf>,
    /// Plan-cache shape.
    pub cache: CacheConfig,
}

/// A running server: accept loops live on background threads until
/// [`Server::shutdown`] (or drop, which only detaches them).
pub struct Server {
    cache: Arc<PlanCache>,
    stop: Arc<AtomicBool>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
    acceptors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind the configured listeners and start accepting.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let cache = Arc::new(PlanCache::new(config.cache));
        let stop = Arc::new(AtomicBool::new(false));
        let mut acceptors = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr.as_str())?;
            tcp_addr = Some(listener.local_addr()?);
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            acceptors.push(std::thread::spawn(move || {
                accept_tcp(listener, cache, stop)
            }));
        }
        let mut uds_path = None;
        if let Some(path) = &config.uds {
            // A stale socket file from a previous run would make bind fail.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            uds_path = Some(path.clone());
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            acceptors.push(std::thread::spawn(move || {
                accept_uds(listener, cache, stop)
            }));
        }
        Ok(Server {
            cache,
            stop,
            tcp_addr,
            uds_path,
            acceptors,
        })
    }

    /// The bound TCP address (with the resolved ephemeral port), if TCP
    /// was configured.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The shared plan cache (for in-process inspection in tests and
    /// the bench harness).
    #[must_use]
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Stop accepting and join the accept loops. Already-open
    /// connections finish their in-flight frame and close on next read.
    pub fn shutdown(mut self) {
        // Release: pairs with the Acquire in the accept loops so a loop
        // woken by the poke below observes the flag.
        self.stop.store(true, Ordering::Release);
        // Poke each listener so its blocking accept() returns.
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(path) = &self.uds_path {
            let _ = UnixStream::connect(path);
            let _ = std::fs::remove_file(path);
        }
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_tcp(listener: TcpListener, cache: Arc<PlanCache>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        // Acquire: pairs with the Release store in `shutdown`.
        if stop.load(Ordering::Acquire) {
            break;
        }
        if let Ok(stream) = stream {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                serve_connection(reader, BufWriter::new(stream), &cache);
            });
        }
    }
}

fn accept_uds(listener: UnixListener, cache: Arc<PlanCache>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        // Acquire: pairs with the Release store in `shutdown`.
        if stop.load(Ordering::Acquire) {
            break;
        }
        if let Ok(stream) = stream {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                serve_connection(reader, BufWriter::new(stream), &cache);
            });
        }
    }
}

/// One connection's request→reply loop. Recoverable decode failures
/// (truncated body, unknown version/tag, malformed payload — the body
/// was fully consumed, the stream is in sync) answer an `ErrorReply`
/// and keep serving; I/O errors and oversized length prefixes close.
fn serve_connection(
    mut reader: impl std::io::Read,
    mut writer: impl std::io::Write,
    cache: &PlanCache,
) {
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean EOF
            Err(err) => {
                if err.recoverable() {
                    let code = match &err {
                        WireError::Decode(DecodeError::UnknownVersion { .. }) => {
                            ErrorCode::UnsupportedVersion
                        }
                        _ => ErrorCode::BadFrame,
                    };
                    let reply = Frame::ErrorReply {
                        request_id: 0,
                        code,
                        message: err.to_string(),
                    };
                    if write_frame(&mut writer, &reply).is_err() {
                        return;
                    }
                    continue;
                }
                return;
            }
        };
        let reply = match frame {
            Frame::SubmitProblem { request_id, spec } => match cache.prepare(&spec) {
                Ok(reply) => Frame::ReportReply { request_id, reply },
                Err(e) => Frame::ErrorReply {
                    request_id,
                    code: e.code(),
                    message: e.to_string(),
                },
            },
            Frame::RunSteps {
                request_id,
                spec,
                seed,
            } => match cache.run(&spec, seed) {
                Ok(reply) => Frame::ReportReply { request_id, reply },
                Err(e) => Frame::ErrorReply {
                    request_id,
                    code: e.code(),
                    message: e.to_string(),
                },
            },
            // Reply frames arriving at the server are a client bug.
            Frame::ReportReply { request_id, .. } | Frame::ErrorReply { request_id, .. } => {
                Frame::ErrorReply {
                    request_id,
                    code: ErrorCode::BadFrame,
                    message: "reply frame sent to server".into(),
                }
            }
        };
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
    }
}
