//! Deterministic server-side state initialization.
//!
//! `RunSteps` carries only a `seed`, never grid payloads (frames stay
//! tiny and the cache key stays purely geometric), so the server and any
//! reference run must derive the *same* initial state from
//! `(problem, seed)`. This module is that single definition — the bench
//! harness and the fault-injection tests call it in-process to assert
//! bitwise identity against server-side runs.

use tempora_grid::{fill_random_1d, fill_random_2d, fill_random_3d, fill_random_life};
use tempora_plan::{Problem, State};

/// A freshly initialized state for `problem`, deterministically filled
/// from `seed`: uniform `[-1, 1)` for the `f64` grids, 35% alive cells
/// for Life, and 4-symbol pseudo-random sequences for LCS.
#[must_use]
pub fn fresh_state(problem: &Problem, seed: u64) -> State {
    let mut state = problem.state();
    match &mut state {
        State::Grid1(g) => fill_random_1d(g, seed, -1.0, 1.0),
        State::Grid2(g) => fill_random_2d(g, seed, -1.0, 1.0),
        State::Grid2i(g) => fill_random_life(g, seed, 0.35),
        State::Grid3(g) => fill_random_3d(g, seed, -1.0, 1.0),
        State::Lcs(l) => {
            let mut s = splitmix(seed);
            for v in l.a.iter_mut() {
                s = splitmix(s);
                *v = (s % 4) as u8;
            }
            for v in l.b.iter_mut() {
                s = splitmix(s);
                *v = (s % 4) as u8;
            }
            l.length = None;
        }
    }
    state
}

/// One SplitMix64 step — a tiny, stable PRNG for the LCS alphabets
/// (the grid fills reuse the workspace RNG via `tempora_grid`).
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_proto::state_digest;
    use tempora_stencil::Heat1dCoeffs;

    #[test]
    fn same_seed_same_state_different_seed_different_state() {
        let heat = Problem::heat1d(128, 4, Heat1dCoeffs::classic(0.25));
        for p in [heat, Problem::lcs(64, 48)] {
            let a = fresh_state(&p, 7);
            let b = fresh_state(&p, 7);
            let c = fresh_state(&p, 8);
            assert_eq!(state_digest(&a), state_digest(&b));
            assert_ne!(state_digest(&a), state_digest(&c));
        }
    }
}
