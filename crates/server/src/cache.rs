//! The sharded concurrent plan cache with same-plan request batching.
//!
//! # Interning
//!
//! Compiled [`Plan`]s are interned by [`SpecKey`] — the canonical bytes
//! of problem *and* solver configuration — across a fixed array of
//! shards, each an independent `Mutex<HashMap>`. Shard locks guard only
//! map lookups (never a build or a run), so concurrent requests for
//! *different* problems don't serialize on each other. Each shard holds
//! at most `capacity / shards` entries; inserting beyond that evicts the
//! least-recently-used entry of that shard. In-flight requests keep the
//! evicted entry alive through their `Arc` — eviction only unlinks it
//! from the map.
//!
//! # Batching (flat combining)
//!
//! Requests for the same entry don't queue on a lock one by one. Each
//! request enqueues a job on the entry and then tries to become the
//! entry's **combiner** (`try_lock` on the plan slot). The winner drains
//! the whole queue under a single slot acquisition — plan built once,
//! then one run per job — while the losers block on their job's condvar.
//! A drained job records how many requests shared its acquisition
//! ([`tempora_proto::RunReply::batched`]).
//!
//! # Poisoning
//!
//! A panic inside a cached plan's run (PR 8's failure model) returns
//! [`PlanError::Poisoned`] and marks *only that entry's* plan. The
//! poisoned run's own request gets [`ServeError::Poisoned`]; the **next**
//! job for the same key finds `Plan::is_poisoned()`, calls
//! [`Plan::reset`] against its fresh state, and runs — bitwise identical
//! to a fresh build (pinned by `tests/fault_injection.rs`). If even the
//! reset run fails, the plan is dropped from the slot so the following
//! request rebuilds from scratch. A poisoned plan is never served as-is.

use crate::fill::fresh_state;
use crate::ServeError;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, TryLockError};
use std::time::{Duration, Instant};
use tempora_plan::{Plan, PlanError};
use tempora_proto::{state_digest, JobSpec, RunReply, SpecKey};

/// Lock a std mutex, continuing through lock poisoning: every critical
/// section below leaves the guarded data consistent even if a holder
/// panicked (worst case a `None` plan slot, which rebuilds).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cache shape knobs.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Number of independent shards (lock granularity).
    pub shards: usize,
    /// Total cached-plan capacity across all shards.
    pub capacity: usize,
    /// Per-entry batching-queue bound: a `run` arriving while this many
    /// jobs already wait on the same entry is **shed** with
    /// [`ServeError::Busy`] instead of queueing unbounded work. `0`
    /// sheds everything (a test hook); large values approximate the old
    /// unbounded behavior.
    pub max_queue_depth: usize,
    /// The `retry_after_ms` hint carried by shed replies.
    pub busy_retry_ms: u32,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            shards: 8,
            capacity: 64,
            max_queue_depth: 64,
            busy_retry_ms: 25,
        }
    }
}

/// Monotonic cache counters (all `Relaxed`: they are statistics, never
/// used to order memory accesses).
#[derive(Default, Debug)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    poison_resets: AtomicU64,
    evictions: AtomicU64,
    drains: AtomicU64,
    drained_jobs: AtomicU64,
    shed: AtomicU64,
}

/// A point-in-time copy of the cache's internal counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Lookups that found an interned entry.
    pub hits: u64,
    /// Lookups that inserted a fresh entry.
    pub misses: u64,
    /// `PlanBuilder::build` invocations.
    pub builds: u64,
    /// Poison recoveries via `Plan::reset`.
    pub poison_resets: u64,
    /// Entries unlinked by LRU pressure.
    pub evictions: u64,
    /// Combiner drains executed.
    pub drains: u64,
    /// Jobs serviced across all drains.
    pub drained_jobs: u64,
    /// Runs shed with `Busy` because an entry's queue was full.
    pub shed: u64,
    /// Connections accepted by the network layer (zero for a bare
    /// cache; merged in by `Server::stats`).
    pub conns_opened: u64,
    /// Connections rejected at admission (`Busy` before spawn).
    pub conns_rejected: u64,
    /// Connections cut for stalling mid-frame (`DeadlineExceeded`).
    pub deadline_closes: u64,
    /// Connections reaped for sitting idle past the idle timeout.
    pub idle_closes: u64,
    /// `GoingAway` farewells sent while draining.
    pub going_away: u64,
}

impl CacheStats {
    fn snapshot(&self) -> StatsSnapshot {
        // Relaxed throughout: independent monotonic counters read for
        // reporting; no cross-counter consistency is promised.
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed), // Relaxed: reporting
            misses: self.misses.load(Ordering::Relaxed), // Relaxed: reporting
            builds: self.builds.load(Ordering::Relaxed), // Relaxed: reporting
            poison_resets: self.poison_resets.load(Ordering::Relaxed), // Relaxed: reporting
            evictions: self.evictions.load(Ordering::Relaxed), // Relaxed: reporting
            drains: self.drains.load(Ordering::Relaxed), // Relaxed: reporting
            drained_jobs: self.drained_jobs.load(Ordering::Relaxed), // Relaxed: reporting
            shed: self.shed.load(Ordering::Relaxed), // Relaxed: reporting
            // Network-layer counters live on the server, not the cache.
            conns_opened: 0,
            conns_rejected: 0,
            deadline_closes: 0,
            idle_closes: 0,
            going_away: 0,
        }
    }
}

/// Where one request parks until its combiner publishes a result.
struct JobSlot {
    result: Mutex<Option<Result<RunReply, ServeError>>>,
    ready: Condvar,
}

struct Job {
    seed: u64,
    /// True when the map lookup found the entry already interned.
    map_hit: bool,
    enqueued: Instant,
    done: Arc<JobSlot>,
}

/// One interned spec: its compiled plan (the slot) plus the batching
/// queue. The slot mutex doubles as the combiner token.
struct Entry {
    spec: JobSpec,
    /// LRU tick of the last lookup. Relaxed: an approximate recency
    /// order is all eviction needs.
    last_used: AtomicU64,
    builds: AtomicU64,
    resets: AtomicU64,
    slot: Mutex<Option<Plan>>,
    queue: Mutex<VecDeque<Job>>,
}

type Shard = Mutex<HashMap<SpecKey, Arc<Entry>>>;

/// The sharded concurrent plan cache. See the module docs.
pub struct PlanCache {
    shards: Vec<Shard>,
    per_shard_cap: usize,
    max_queue_depth: usize,
    busy_retry_ms: u32,
    clock: AtomicU64,
    stats: CacheStats,
}

impl PlanCache {
    /// An empty cache with `config`'s shape.
    #[must_use]
    pub fn new(config: CacheConfig) -> PlanCache {
        let shards = config.shards.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_cap: (config.capacity / shards).max(1),
            max_queue_depth: config.max_queue_depth,
            busy_retry_ms: config.busy_retry_ms,
            clock: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    /// Current counter values.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Interned entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// True when nothing is interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Find or intern the entry for `spec`, bumping LRU recency and the
    /// hit/miss counters, evicting the shard's LRU entry on overflow.
    fn entry(&self, spec: &JobSpec) -> (Arc<Entry>, bool) {
        let key = spec.key();
        let shard = &self.shards[(key.hash64() as usize) % self.shards.len()];
        // Relaxed: the tick only orders evictions approximately.
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = lock(shard);
        if let Some(entry) = map.get(&key) {
            // Relaxed: recency bookkeeping only.
            entry.last_used.store(now, Ordering::Relaxed);
            self.stats.hits.fetch_add(1, Ordering::Relaxed); // Relaxed: statistic
            return (Arc::clone(entry), true);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed); // Relaxed: statistic
        if map.len() >= self.per_shard_cap {
            // Relaxed: same recency bookkeeping as above.
            let lru = map
                .iter()
                // Relaxed: recency bookkeeping only.
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(lru) = lru {
                map.remove(&lru);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed); // Relaxed: statistic
            }
        }
        let entry = Arc::new(Entry {
            spec: *spec,
            last_used: AtomicU64::new(now),
            builds: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            slot: Mutex::new(None),
            queue: Mutex::new(VecDeque::new()),
        });
        map.insert(key, Arc::clone(&entry));
        (entry, false)
    }

    /// Intern `spec` and compile its plan without running it (the
    /// `SubmitProblem` path). The reply carries `steps == 0` and the
    /// entry's build counters.
    pub fn prepare(&self, spec: &JobSpec) -> Result<RunReply, ServeError> {
        let start = Instant::now();
        let (entry, map_hit) = self.entry(spec);
        let mut slot = lock(&entry.slot);
        let built_now = slot.is_none();
        let plan = self.ensure_plan(&entry, &mut slot)?;
        Ok(RunReply {
            cache_hit: map_hit && !built_now,
            // Relaxed: reporting monotonic counters.
            plan_builds: entry.builds.load(Ordering::Relaxed),
            resets: entry.resets.load(Ordering::Relaxed), // Relaxed: reporting
            batched: 1,
            engine: plan.engine(),
            steps: 0,
            threads: plan.threads() as u32,
            pinned: false,
            tiles: None,
            lcs_length: None,
            digest: 0,
            server_ns: start.elapsed().as_nanos() as u64,
        })
    }

    /// Run `spec`'s plan against a fresh `seed`-derived state, batching
    /// with any concurrent same-spec requests. Blocks until a combiner
    /// (possibly this thread) publishes the result.
    pub fn run(&self, spec: &JobSpec, seed: u64) -> Result<RunReply, ServeError> {
        let (entry, map_hit) = self.entry(spec);
        let done = Arc::new(JobSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        {
            // Queue-depth shed: refuse work the combiner can't batch soon
            // rather than queueing unboundedly — the caller gets a typed
            // Busy with a retry hint instead of latency collapse.
            let mut queue = lock(&entry.queue);
            if queue.len() >= self.max_queue_depth {
                self.stats.shed.fetch_add(1, Ordering::Relaxed); // Relaxed: statistic
                return Err(ServeError::Busy {
                    retry_after_ms: self.busy_retry_ms,
                });
            }
            queue.push_back(Job {
                seed,
                map_hit,
                enqueued: Instant::now(),
                done: Arc::clone(&done),
            });
        }
        loop {
            if let Some(result) = lock(&done.result).take() {
                return result;
            }
            match entry.slot.try_lock() {
                Ok(mut slot) => self.drain(&entry, &mut slot),
                // Another thread holds the combiner token and a poisoned
                // token still drains queued jobs consistently.
                Err(TryLockError::Poisoned(p)) => self.drain(&entry, &mut p.into_inner()),
                Err(TryLockError::WouldBlock) => {
                    // A combiner is active. Wait for it to publish our
                    // result, with a timeout so the push-after-drain race
                    // (combiner exits just before our enqueue became
                    // visible) re-enters try_lock instead of hanging.
                    let guard = lock(&done.result);
                    if guard.is_some() {
                        continue;
                    }
                    drop(
                        done.ready
                            .wait_timeout(guard, Duration::from_micros(500))
                            .unwrap_or_else(PoisonError::into_inner),
                    );
                }
            }
        }
    }

    /// Drain every queued job of `entry` under one slot acquisition —
    /// the flat-combining step.
    fn drain(&self, entry: &Entry, slot: &mut Option<Plan>) {
        let jobs: Vec<Job> = lock(&entry.queue).drain(..).collect();
        if jobs.is_empty() {
            return;
        }
        // Relaxed: statistics.
        self.stats.drains.fetch_add(1, Ordering::Relaxed);
        self.stats
            .drained_jobs
            // Relaxed: statistics.
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let batched = jobs.len() as u32;
        for job in jobs {
            let built_now = slot.is_none();
            let outcome = self.run_one(entry, slot, &job, built_now, batched);
            *lock(&job.done.result) = Some(outcome);
            job.done.ready.notify_all();
        }
    }

    /// Execute one job against the (possibly still unbuilt, possibly
    /// poisoned) plan in `slot`.
    fn run_one(
        &self,
        entry: &Entry,
        slot: &mut Option<Plan>,
        job: &Job,
        built_now: bool,
        batched: u32,
    ) -> Result<RunReply, ServeError> {
        let plan = self.ensure_plan(entry, slot)?;
        let mut state = fresh_state(&entry.spec.problem, job.seed);
        if plan.is_poisoned() {
            // Poison recovery: reset against the fresh state, then run.
            // The entry's plan is reused — zero rebuilds — and the run
            // below is bitwise-identical to a fresh plan's.
            plan.reset(&mut state).map_err(ServeError::Run)?;
            // Relaxed: statistics.
            entry.resets.fetch_add(1, Ordering::Relaxed);
            self.stats.poison_resets.fetch_add(1, Ordering::Relaxed); // Relaxed: statistic
        }
        let report = match plan.run(&mut state) {
            Ok(report) => report,
            Err(PlanError::Poisoned { panic }) => {
                // This request's run panicked: the entry stays interned
                // with its poisoned plan (the *next* job resets it) and
                // only this request fails.
                return Err(ServeError::Poisoned(panic));
            }
            Err(e) => {
                // A non-poisoning failure after a reset means the plan is
                // beyond recovery; drop it so the next request rebuilds.
                *slot = None;
                return Err(ServeError::Run(e));
            }
        };
        Ok(RunReply {
            cache_hit: job.map_hit && !built_now,
            // Relaxed: reporting monotonic counters.
            plan_builds: entry.builds.load(Ordering::Relaxed),
            resets: entry.resets.load(Ordering::Relaxed), // Relaxed: reporting
            batched,
            engine: report.engine,
            steps: report.steps as u64,
            threads: report.threads as u32,
            pinned: report.pinned,
            tiles: report
                .tiles
                .map(|t| (t.tiles as u64, t.block as u64, t.height as u64)),
            lcs_length: report.lcs_length,
            digest: state_digest(&state),
            server_ns: job.enqueued.elapsed().as_nanos() as u64,
        })
    }

    /// Build the entry's plan if the slot is empty.
    fn ensure_plan<'s>(
        &self,
        entry: &Entry,
        slot: &'s mut Option<Plan>,
    ) -> Result<&'s mut Plan, ServeError> {
        if slot.is_none() {
            let plan = entry
                .spec
                .config
                .plan_builder()
                .build(&entry.spec.problem)
                .map_err(ServeError::Build)?;
            // Relaxed: statistics.
            entry.builds.fetch_add(1, Ordering::Relaxed);
            self.stats.builds.fetch_add(1, Ordering::Relaxed); // Relaxed: statistic
            *slot = Some(plan);
        }
        match slot.as_mut() {
            Some(plan) => Ok(plan),
            // The branch above just filled the slot; `None` here is
            // impossible but still mapped to an error, never a panic.
            None => Err(ServeError::Internal("plan slot empty after build")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_plan::Problem;
    use tempora_proto::Tiling;
    use tempora_stencil::Heat1dCoeffs;

    fn spec() -> JobSpec {
        JobSpec::new(Problem::heat1d(512, 8, Heat1dCoeffs::classic(0.25)))
    }

    #[test]
    fn second_run_hits_without_rebuilding() {
        let cache = PlanCache::new(CacheConfig::default());
        let first = cache.run(&spec(), 1).unwrap();
        assert!(!first.cache_hit);
        assert_eq!(first.plan_builds, 1);
        let second = cache.run(&spec(), 1).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.plan_builds, 1, "hit must not rebuild");
        assert_eq!(second.digest, first.digest, "same seed, same state");
        let stats = cache.stats();
        assert_eq!((stats.builds, stats.hits, stats.misses), (1, 1, 1));
    }

    #[test]
    fn distinct_configs_intern_distinct_plans() {
        let cache = PlanCache::new(CacheConfig::default());
        let a = spec();
        let mut b = spec();
        b.config.tiling = Tiling::Ghost {
            block: 64,
            height: 4,
        };
        b.config.threads = 2;
        cache.run(&a, 1).unwrap();
        cache.run(&b, 1).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().builds, 2);
    }

    #[test]
    fn lru_eviction_keeps_the_cache_bounded() {
        let cache = PlanCache::new(CacheConfig {
            shards: 1,
            capacity: 2,
            ..CacheConfig::default()
        });
        for n in [128usize, 160, 192, 224] {
            let s = JobSpec::new(Problem::heat1d(n, 4, Heat1dCoeffs::classic(0.25)));
            cache.run(&s, 1).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 2);
        // An evicted spec comes back as a miss + rebuild, not an error.
        let s = JobSpec::new(Problem::heat1d(128, 4, Heat1dCoeffs::classic(0.25)));
        let r = cache.run(&s, 1).unwrap();
        assert!(!r.cache_hit);
    }

    #[test]
    fn concurrent_same_spec_requests_share_one_build() {
        let cache = std::sync::Arc::new(PlanCache::new(CacheConfig::default()));
        let mut handles = Vec::new();
        for seed in 0..8u64 {
            let cache = std::sync::Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                cache.run(&spec(), seed).unwrap()
            }));
        }
        let replies: Vec<RunReply> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(cache.stats().builds, 1, "one build for the whole burst");
        assert!(replies.iter().all(|r| r.plan_builds == 1));
        // Same seed ⇒ same digest; different seeds ⇒ (almost surely) not.
        assert_ne!(replies[0].digest, replies[1].digest);
    }
}
