//! `tempora-serve` — stand up the solver service and run until killed.
//!
//! ```text
//! tempora-serve [--tcp ADDR] [--uds PATH] [--cache-cap N] [--shards N]
//!               [--max-conns N] [--idle-ms MS] [--stall-ms MS]
//!               [--queue-depth N]
//! ```
//!
//! With no flags it binds TCP on `127.0.0.1:0` (ephemeral port). On
//! success it prints exactly one line to stdout —
//! `tempora-serve listening tcp=HOST:PORT uds=PATH` — which the bench
//! harness parses to discover the resolved port, then serves forever.

use std::process::ExitCode;
use tempora_server::{CacheConfig, ResilienceConfig, Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tempora-serve [--tcp ADDR] [--uds PATH] [--cache-cap N] [--shards N] \
         [--max-conns N] [--idle-ms MS] [--stall-ms MS] [--queue-depth N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServerConfig {
        tcp: None,
        uds: None,
        cache: CacheConfig::default(),
        resilience: ResilienceConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = match arg.as_str() {
            "--help" | "-h" => return usage(),
            _ => match args.next() {
                Some(v) => v,
                None => {
                    eprintln!("tempora-serve: {arg} needs a value");
                    return usage();
                }
            },
        };
        match arg.as_str() {
            "--tcp" => config.tcp = Some(value),
            "--uds" => config.uds = Some(value.into()),
            "--cache-cap" => match value.parse() {
                Ok(n) => config.cache.capacity = n,
                Err(_) => {
                    eprintln!("tempora-serve: --cache-cap wants an integer, got {value:?}");
                    return usage();
                }
            },
            "--shards" => match value.parse() {
                Ok(n) if n > 0 => config.cache.shards = n,
                _ => {
                    eprintln!("tempora-serve: --shards wants a positive integer, got {value:?}");
                    return usage();
                }
            },
            "--max-conns" => match value.parse() {
                Ok(n) => config.resilience.max_connections = n,
                Err(_) => {
                    eprintln!("tempora-serve: --max-conns wants an integer, got {value:?}");
                    return usage();
                }
            },
            "--idle-ms" => match value.parse() {
                Ok(ms) => config.resilience.idle_timeout = std::time::Duration::from_millis(ms),
                Err(_) => {
                    eprintln!("tempora-serve: --idle-ms wants milliseconds, got {value:?}");
                    return usage();
                }
            },
            "--stall-ms" => match value.parse() {
                Ok(ms) => config.resilience.stall_timeout = std::time::Duration::from_millis(ms),
                Err(_) => {
                    eprintln!("tempora-serve: --stall-ms wants milliseconds, got {value:?}");
                    return usage();
                }
            },
            "--queue-depth" => match value.parse() {
                Ok(n) => config.cache.max_queue_depth = n,
                Err(_) => {
                    eprintln!("tempora-serve: --queue-depth wants an integer, got {value:?}");
                    return usage();
                }
            },
            _ => {
                eprintln!("tempora-serve: unknown flag {arg}");
                return usage();
            }
        }
    }
    if config.tcp.is_none() && config.uds.is_none() {
        config.tcp = Some("127.0.0.1:0".to_string());
    }

    let server = match Server::start(config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("tempora-serve: failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tcp = server
        .tcp_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|| "-".to_string());
    let uds = config
        .uds
        .as_ref()
        .map(|p| p.display().to_string())
        .unwrap_or_else(|| "-".to_string());
    println!("tempora-serve listening tcp={tcp} uds={uds}");
    // The harness reads this line to find the port; make sure it is out
    // before we block.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    // Serve until the process is killed (the bench harness and CI both
    // manage lifetime externally).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
