//! Hand-rolled `std::arch` implementations of the hot pack operations.
//!
//! The portable [`crate::pack::Pack`] model compiles to good vector code
//! under `-C target-cpu=native`, but the paper's cost analysis (§3.3) is
//! stated in terms of *specific* AVX instructions — `vpermpd` for the
//! lane-crossing rotate, `vblendpd` for the bottom-element blend,
//! `vunpcklpd`/`vperm2f128` for the 4×4 transpose. This module pins those
//! choices down explicitly for x86-64 so that the measured kernels execute
//! the instruction mix the paper reasons about, and so the repository
//! demonstrates the `std::arch` path end to end.
//!
//! Everything here is equivalence-tested against the portable model (see
//! the tests at the bottom; they run on any x86-64 host with AVX2+FMA and
//! are skipped elsewhere).

/// Returns true when the running CPU supports the AVX2+FMA fast paths.
///
/// On non-x86-64 targets this is always `false` and the portable pack
/// implementation is used everywhere.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX2 `__m256d` kernels (x86-64 only).
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use crate::pack::F64x4;
    use core::arch::x86_64::*;

    /// Bit-cast a portable pack to `__m256d`.
    ///
    /// `F64x4` is `#[repr(C, align(32))]` over `[f64; 4]`, so an aligned
    /// vector load from its address is always valid.
    #[inline(always)]
    pub fn from_pack(p: F64x4) -> __m256d {
        // SAFETY: F64x4 is 32 bytes, 32-byte aligned, and lane i is at
        // offset 8*i, exactly the __m256d memory layout.
        unsafe { _mm256_load_pd(p.0.as_ptr()) }
    }

    /// Bit-cast an `__m256d` back to a portable pack.
    #[inline(always)]
    pub fn to_pack(v: __m256d) -> F64x4 {
        let mut out = F64x4::splat(0.0);
        // SAFETY: same layout argument as `from_pack`.
        unsafe { _mm256_store_pd(out.0.as_mut_ptr(), v) };
        out
    }

    /// Unaligned vector load of 4 doubles starting at `src[at]`.
    ///
    /// # Safety
    /// `at + 4 <= src.len()` must hold (checked by `debug_assert!`).
    #[inline(always)]
    pub unsafe fn loadu(src: &[f64], at: usize) -> __m256d {
        debug_assert!(at + 4 <= src.len());
        _mm256_loadu_pd(src.as_ptr().add(at))
    }

    /// Unaligned vector store of 4 doubles into `dst[at..at+4]`.
    ///
    /// # Safety
    /// `at + 4 <= dst.len()` must hold (checked by `debug_assert!`).
    #[inline(always)]
    pub unsafe fn storeu(v: __m256d, dst: &mut [f64], at: usize) {
        debug_assert!(at + 4 <= dst.len());
        _mm256_storeu_pd(dst.as_mut_ptr().add(at), v)
    }

    /// Broadcast a scalar to all four lanes.
    #[inline(always)]
    pub fn splat(v: f64) -> __m256d {
        // SAFETY: no memory access; plain register broadcast.
        unsafe { _mm256_set1_pd(v) }
    }

    /// Fused multiply-add `a*b + c` (`vfmadd`).
    ///
    /// # Safety
    /// Requires AVX2+FMA (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    pub unsafe fn fmadd(a: __m256d, b: __m256d, c: __m256d) -> __m256d {
        _mm256_fmadd_pd(a, b, c)
    }

    /// Lane-wise multiply `a*b` (`vmulpd`) — the unfused tail of every
    /// kernel's `mul_add` chain.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn mul(a: __m256d, b: __m256d) -> __m256d {
        _mm256_mul_pd(a, b)
    }

    /// The paper's `vrotate` (Algorithm 3 line 13): lane `j` of the result
    /// is lane `(j+3) % 4` of the input — a single lane-crossing `vpermpd`.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn rotate_up(v: __m256d) -> __m256d {
        // Output lane selectors (2 bits each, lane 0 in the low bits):
        // out0 <- in3, out1 <- in0, out2 <- in1, out3 <- in2.
        _mm256_permute4x64_pd::<0b10_01_00_11>(v)
    }

    /// The paper's `vblend` (Algorithm 3 line 14): replace lane 0 with the
    /// new bottom element — an in-lane `vblendpd` against a broadcast.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn blend_bottom(v: __m256d, bottom: f64) -> __m256d {
        _mm256_blend_pd::<0b0001>(v, _mm256_set1_pd(bottom))
    }

    /// Steady-state input-vector production (`rotate_up` then
    /// `blend_bottom` fused): shift lanes up one step, dropping the top
    /// lane, and insert `bottom` into lane 0.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn shift_up_insert(v: __m256d, bottom: f64) -> __m256d {
        blend_bottom(rotate_up(v), bottom)
    }

    /// Extract the top lane (lane 3).
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn extract_top(v: __m256d) -> f64 {
        let hi = _mm256_extractf128_pd::<1>(v);
        _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi))
    }

    /// Strided gather of 4 doubles: lane `i` reads
    /// `src[(base + i*stride) as usize]` (the paper's `vloadset`).
    ///
    /// # Safety
    /// All four indices must be in bounds (checked by `debug_assert!`).
    #[inline(always)]
    pub unsafe fn gather(src: &[f64], base: usize, stride: isize) -> __m256d {
        let i = |k: isize| -> f64 {
            let idx = base as isize + k * stride;
            debug_assert!(idx >= 0 && (idx as usize) < src.len());
            *src.get_unchecked(idx as usize)
        };
        _mm256_set_pd(i(3), i(2), i(1), i(0))
    }

    /// In-register 4×4 transpose using `vunpcklpd`/`vunpckhpd` plus two
    /// lane-crossing `vperm2f128` — the instruction sequence used for the
    /// temporal scheme's initial input-vector loading (§3.3) and the DLT
    /// baseline's block transpose.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn transpose4(
        r0: &mut __m256d,
        r1: &mut __m256d,
        r2: &mut __m256d,
        r3: &mut __m256d,
    ) {
        let t0 = _mm256_unpacklo_pd(*r0, *r1); // a0 b0 a2 b2
        let t1 = _mm256_unpackhi_pd(*r0, *r1); // a1 b1 a3 b3
        let t2 = _mm256_unpacklo_pd(*r2, *r3); // c0 d0 c2 d2
        let t3 = _mm256_unpackhi_pd(*r2, *r3); // c1 d1 c3 d3
        *r0 = _mm256_permute2f128_pd::<0x20>(t0, t2); // a0 b0 c0 d0
        *r1 = _mm256_permute2f128_pd::<0x20>(t1, t3); // a1 b1 c1 d1
        *r2 = _mm256_permute2f128_pd::<0x31>(t0, t2); // a2 b2 c2 d2
        *r3 = _mm256_permute2f128_pd::<0x31>(t1, t3); // a3 b3 c3 d3
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::avx2::*;
    use super::avx2_available;
    use crate::pack::{transpose, F64x4, Pack};

    fn p(a: f64, b: f64, c: f64, d: f64) -> F64x4 {
        Pack([a, b, c, d])
    }

    #[test]
    fn pack_roundtrip() {
        if !avx2_available() {
            return;
        }
        let x = p(1.0, 2.0, 3.0, 4.0);
        assert_eq!(to_pack(from_pack(x)), x);
    }

    #[test]
    fn rotate_matches_portable() {
        if !avx2_available() {
            return;
        }
        let x = p(1.0, 2.0, 3.0, 4.0);
        let r = unsafe { rotate_up(from_pack(x)) };
        assert_eq!(to_pack(r), x.rotate_up());
    }

    #[test]
    fn blend_and_shift_match_portable() {
        if !avx2_available() {
            return;
        }
        let x = p(1.0, 2.0, 3.0, 4.0);
        let b = unsafe { blend_bottom(from_pack(x), 9.0) };
        assert_eq!(to_pack(b), x.replace(0, 9.0));
        let s = unsafe { shift_up_insert(from_pack(x), 9.0) };
        assert_eq!(to_pack(s), x.shift_up_insert(9.0));
    }

    #[test]
    fn fmadd_matches_portable_mul_add() {
        if !avx2_available() {
            return;
        }
        let a = p(1.5, -2.0, 3.25, 0.125);
        let b = p(2.0, 4.0, -1.0, 8.0);
        let c = p(0.1, 0.2, 0.3, 0.4);
        let r = unsafe { fmadd(from_pack(a), from_pack(b), from_pack(c)) };
        assert_eq!(to_pack(r), a.mul_add(b, c));
    }

    #[test]
    fn extract_top_is_lane3() {
        if !avx2_available() {
            return;
        }
        let x = p(1.0, 2.0, 3.0, 42.0);
        assert_eq!(unsafe { extract_top(from_pack(x)) }, 42.0);
    }

    #[test]
    fn gather_matches_portable() {
        if !avx2_available() {
            return;
        }
        let src: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
        for &(base, stride) in &[(0usize, 7isize), (21, -7), (5, 3), (63, -9)] {
            let g = unsafe { gather(&src, base, stride) };
            assert_eq!(to_pack(g), F64x4::gather(&src, base, stride));
        }
    }

    #[test]
    fn loadu_storeu_roundtrip() {
        if !avx2_available() {
            return;
        }
        let src: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 16];
        for at in 0..=12 {
            // SAFETY: at + 4 <= 16.
            unsafe { storeu(loadu(&src, at), &mut dst, at) };
        }
        assert_eq!(src, dst);
    }

    #[test]
    fn transpose4_matches_portable() {
        if !avx2_available() {
            return;
        }
        let rows: [F64x4; 4] = core::array::from_fn(|i| F64x4::from_fn(|j| (i * 10 + j) as f64));
        let mut expect = rows;
        transpose(&mut expect);

        let mut r0 = from_pack(rows[0]);
        let mut r1 = from_pack(rows[1]);
        let mut r2 = from_pack(rows[2]);
        let mut r3 = from_pack(rows[3]);
        unsafe { transpose4(&mut r0, &mut r1, &mut r2, &mut r3) };
        assert_eq!(to_pack(r0), expect[0]);
        assert_eq!(to_pack(r1), expect[1]);
        assert_eq!(to_pack(r2), expect[2]);
        assert_eq!(to_pack(r3), expect[3]);
    }
}
