//! Hand-rolled `std::arch` implementations of the hot pack operations.
//!
//! The portable [`crate::pack::Pack`] model compiles to good vector code
//! under `-C target-cpu=native`, but the paper's cost analysis (§3.3) is
//! stated in terms of *specific* AVX instructions — `vpermpd` for the
//! lane-crossing rotate, `vblendpd` for the bottom-element blend,
//! `vunpcklpd`/`vperm2f128` for the 4×4 transpose. This module pins those
//! choices down explicitly for x86-64 so that the measured kernels execute
//! the instruction mix the paper reasons about, and so the repository
//! demonstrates the `std::arch` path end to end.
//!
//! Everything here is equivalence-tested against the portable model (see
//! the tests at the bottom; they run on any x86-64 host with AVX2+FMA and
//! are skipped elsewhere).

/// Returns true when the running CPU supports the AVX2+FMA fast paths.
///
/// On non-x86-64 targets this is always `false` and the portable pack
/// implementation is used everywhere.
pub fn avx2_available() -> bool {
    // Miri interprets portable Rust only — it cannot execute the
    // `std::arch` intrinsics. Reporting "no AVX2" here routes every
    // engine::Select dispatch in the workspace onto the portable packs,
    // which is exactly the path `cargo miri test` is meant to check.
    #[cfg(any(miri, not(target_arch = "x86_64")))]
    {
        false
    }
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
}

/// AVX2 `__m256d` kernels (x86-64 only).
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use crate::pack::F64x4;
    use core::arch::x86_64::*;

    // Re-exported so downstream engines can name the register types
    // without importing `core::arch` themselves (`cargo xtask audit`
    // bans raw `core::arch` use outside this module).
    pub use core::arch::x86_64::{__m256d, __m256i};

    /// Bit-cast a portable pack to `__m256d`.
    ///
    /// `F64x4` is `#[repr(C, align(32))]` over `[f64; 4]`, so an aligned
    /// vector load from its address is always valid.
    #[inline(always)]
    pub fn from_pack(p: F64x4) -> __m256d {
        // SAFETY: F64x4 is 32 bytes, 32-byte aligned, and lane i is at
        // offset 8*i, exactly the __m256d memory layout.
        unsafe { _mm256_load_pd(p.0.as_ptr()) }
    }

    /// Bit-cast an `__m256d` back to a portable pack.
    #[inline(always)]
    pub fn to_pack(v: __m256d) -> F64x4 {
        let mut out = F64x4::splat(0.0);
        // SAFETY: same layout argument as `from_pack`.
        unsafe { _mm256_store_pd(out.0.as_mut_ptr(), v) };
        out
    }

    /// Unaligned vector load of 4 doubles starting at `src[at]`.
    ///
    /// # Safety
    /// `at + 4 <= src.len()` must hold (checked by `debug_assert!`).
    #[inline(always)]
    pub unsafe fn loadu(src: &[f64], at: usize) -> __m256d {
        debug_assert!(at + 4 <= src.len());
        // SAFETY: caller guarantees `at + 4 <= src.len()`, so the pointer
        // offset stays inside the slice allocation and the 32-byte
        // unaligned read covers in-bounds, initialized f64 lanes only.
        unsafe { _mm256_loadu_pd(src.as_ptr().add(at)) }
    }

    /// Unaligned vector store of 4 doubles into `dst[at..at+4]`.
    ///
    /// # Safety
    /// `at + 4 <= dst.len()` must hold (checked by `debug_assert!`).
    #[inline(always)]
    pub unsafe fn storeu(v: __m256d, dst: &mut [f64], at: usize) {
        debug_assert!(at + 4 <= dst.len());
        // SAFETY: caller guarantees `at + 4 <= dst.len()`, so the pointer
        // offset stays inside the exclusive borrow and the 32-byte
        // unaligned write lands on in-bounds f64 lanes only.
        unsafe { _mm256_storeu_pd(dst.as_mut_ptr().add(at), v) }
    }

    /// Broadcast a scalar to all four lanes.
    #[inline(always)]
    pub fn splat(v: f64) -> __m256d {
        // SAFETY: no memory access; plain register broadcast.
        unsafe { _mm256_set1_pd(v) }
    }

    /// Fused multiply-add `a*b + c` (`vfmadd`).
    ///
    /// # Safety
    /// Requires AVX2+FMA (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    pub unsafe fn fmadd(a: __m256d, b: __m256d, c: __m256d) -> __m256d {
        _mm256_fmadd_pd(a, b, c)
    }

    /// Lane-wise multiply `a*b` (`vmulpd`) — the unfused tail of every
    /// kernel's `mul_add` chain.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn mul(a: __m256d, b: __m256d) -> __m256d {
        _mm256_mul_pd(a, b)
    }

    /// The paper's `vrotate` (Algorithm 3 line 13): lane `j` of the result
    /// is lane `(j+3) % 4` of the input — a single lane-crossing `vpermpd`.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn rotate_up(v: __m256d) -> __m256d {
        // Output lane selectors (2 bits each, lane 0 in the low bits):
        // out0 <- in3, out1 <- in0, out2 <- in1, out3 <- in2.
        _mm256_permute4x64_pd::<0b10_01_00_11>(v)
    }

    /// The paper's `vblend` (Algorithm 3 line 14): replace lane 0 with the
    /// new bottom element — an in-lane `vblendpd` against a broadcast.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn blend_bottom(v: __m256d, bottom: f64) -> __m256d {
        _mm256_blend_pd::<0b0001>(v, _mm256_set1_pd(bottom))
    }

    /// Steady-state input-vector production (`rotate_up` then
    /// `blend_bottom` fused): shift lanes up one step, dropping the top
    /// lane, and insert `bottom` into lane 0.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn shift_up_insert(v: __m256d, bottom: f64) -> __m256d {
        // SAFETY: both callees require exactly AVX2, which this fn's own
        // `#[target_feature]` contract already obliges the caller to prove.
        unsafe { blend_bottom(rotate_up(v), bottom) }
    }

    /// Extract the top lane (lane 3).
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn extract_top(v: __m256d) -> f64 {
        let hi = _mm256_extractf128_pd::<1>(v);
        _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi))
    }

    /// Strided gather of 4 doubles: lane `i` reads
    /// `src[(base + i*stride) as usize]` (the paper's `vloadset`).
    ///
    /// # Safety
    /// All four indices must be in bounds (checked by `debug_assert!`).
    #[inline(always)]
    pub unsafe fn gather(src: &[f64], base: usize, stride: isize) -> __m256d {
        let i = |k: isize| -> f64 {
            let idx = base as isize + k * stride;
            debug_assert!(idx >= 0 && (idx as usize) < src.len());
            // SAFETY: caller guarantees all four gathered indices
            // `base + k*stride` (k = 0..4) are in bounds for `src`.
            unsafe { *src.get_unchecked(idx as usize) }
        };
        // SAFETY: `_mm256_set_pd` touches no memory; it is only gated on
        // AVX, which this fn's caller-proved feature set implies.
        unsafe { _mm256_set_pd(i(3), i(2), i(1), i(0)) }
    }

    /// In-register 4×4 transpose using `vunpcklpd`/`vunpckhpd` plus two
    /// lane-crossing `vperm2f128` — the instruction sequence used for the
    /// temporal scheme's initial input-vector loading (§3.3) and the DLT
    /// baseline's block transpose.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn transpose4(
        r0: &mut __m256d,
        r1: &mut __m256d,
        r2: &mut __m256d,
        r3: &mut __m256d,
    ) {
        let t0 = _mm256_unpacklo_pd(*r0, *r1); // a0 b0 a2 b2
        let t1 = _mm256_unpackhi_pd(*r0, *r1); // a1 b1 a3 b3
        let t2 = _mm256_unpacklo_pd(*r2, *r3); // c0 d0 c2 d2
        let t3 = _mm256_unpackhi_pd(*r2, *r3); // c1 d1 c3 d3
        *r0 = _mm256_permute2f128_pd::<0x20>(t0, t2); // a0 b0 c0 d0
        *r1 = _mm256_permute2f128_pd::<0x20>(t1, t3); // a1 b1 c1 d1
        *r2 = _mm256_permute2f128_pd::<0x31>(t0, t2); // a2 b2 c2 d2
        *r3 = _mm256_permute2f128_pd::<0x31>(t1, t3); // a3 b3 c3 d3
    }

    // -----------------------------------------------------------------
    // epi32 vocabulary (`__m256i`, 8 × i32 lanes) — the integer steady
    // states (Life, LCS) run the same rotate-and-blend schedule as the
    // f64 kernels, at the paper's `vl = 8` integer width.
    // -----------------------------------------------------------------

    use crate::pack::I32x8;

    /// Bit-cast a portable 8-lane i32 pack to `__m256i`.
    ///
    /// `I32x8` is `#[repr(C, align(32))]` over `[i32; 8]`, so an aligned
    /// vector load from its address is always valid.
    #[inline(always)]
    pub fn from_pack_i32(p: I32x8) -> __m256i {
        // SAFETY: I32x8 is 32 bytes, 32-byte aligned, lane i at offset
        // 4*i — exactly the __m256i memory layout.
        unsafe { _mm256_load_si256(p.0.as_ptr() as *const __m256i) }
    }

    /// Bit-cast an `__m256i` back to a portable 8-lane i32 pack.
    #[inline(always)]
    pub fn to_pack_i32(v: __m256i) -> I32x8 {
        let mut out = I32x8::splat(0);
        // SAFETY: same layout argument as `from_pack_i32`.
        unsafe { _mm256_store_si256(out.0.as_mut_ptr() as *mut __m256i, v) };
        out
    }

    /// Broadcast a scalar to all eight lanes.
    #[inline(always)]
    pub fn splat_i32(v: i32) -> __m256i {
        // SAFETY: no memory access; plain register broadcast.
        unsafe { _mm256_set1_epi32(v) }
    }

    /// Lane-wise wrapping add (`vpaddd`) — the Life neighbour-sum tree.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn add_i32(a: __m256i, b: __m256i) -> __m256i {
        _mm256_add_epi32(a, b)
    }

    /// Lane-wise wrapping multiply (`vpmulld`) — the Life rule-mask
    /// select `birth + cur·(survive - birth)`.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn mullo_i32(a: __m256i, b: __m256i) -> __m256i {
        _mm256_mullo_epi32(a, b)
    }

    /// Lane-wise signed maximum (`vpmaxsd`) — the LCS `max(up, left)`.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn max_i32(a: __m256i, b: __m256i) -> __m256i {
        _mm256_max_epi32(a, b)
    }

    /// Lane-wise equality (`vpcmpeqd`): all-ones lanes where `a == b`,
    /// zero lanes elsewhere — the LCS character-equality mask.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn cmpeq_i32(a: __m256i, b: __m256i) -> __m256i {
        _mm256_cmpeq_epi32(a, b)
    }

    /// Mask select (`vpblendvb`): lane `i` of the result is `a[i]` where
    /// the mask lane is all-ones and `b[i]` where it is zero. With masks
    /// from [`cmpeq_i32`] every mask byte within a lane agrees, so the
    /// byte-granular blend is exact — the paper's "blend instruction with
    /// a mask vector of equalities".
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn blendv_i32(b: __m256i, a: __m256i, mask: __m256i) -> __m256i {
        _mm256_blendv_epi8(b, a, mask)
    }

    /// Lane-wise arithmetic right shift by per-lane counts (`vpsravd`) —
    /// the Life rule-table bit test `(mask >> sum) & 1`.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn srav_i32(v: __m256i, counts: __m256i) -> __m256i {
        _mm256_srav_epi32(v, counts)
    }

    /// Lane-wise bitwise AND (`vpand`).
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn and_i32(a: __m256i, b: __m256i) -> __m256i {
        _mm256_and_si256(a, b)
    }

    /// The paper's `vrotate` at 8 integer lanes: lane `j` of the result
    /// is lane `(j+7) % 8` of the input — a single lane-crossing
    /// `vpermd`.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn rotate_up_i32(v: __m256i) -> __m256i {
        // Per-output-lane source indices, lane 0 first.
        let idx = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
        _mm256_permutevar8x32_epi32(v, idx)
    }

    /// The paper's `vblend` at 8 integer lanes: replace lane 0 with the
    /// new bottom element — an in-lane `vpblendd` against a broadcast.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn blend_bottom_i32(v: __m256i, bottom: i32) -> __m256i {
        _mm256_blend_epi32::<0b0000_0001>(v, _mm256_set1_epi32(bottom))
    }

    /// Steady-state input-vector production ([`rotate_up_i32`] then
    /// [`blend_bottom_i32`] fused): shift lanes up one step, dropping the
    /// top lane, and insert `bottom` into lane 0.
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn shift_up_insert_i32(v: __m256i, bottom: i32) -> __m256i {
        // SAFETY: both callees require exactly AVX2, which this fn's own
        // `#[target_feature]` contract already obliges the caller to prove.
        unsafe { blend_bottom_i32(rotate_up_i32(v), bottom) }
    }

    /// Extract the top lane (lane 7).
    ///
    /// # Safety
    /// Requires AVX2 (guard with [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn extract_top_i32(v: __m256i) -> i32 {
        _mm256_extract_epi32::<7>(v)
    }

    /// Strided gather of 8 bytes widened to `i32` lanes: lane `i` reads
    /// `src[(base + i*stride) as usize] as i32` — the paper's `vloadset`
    /// at the integer width, used by the LCS steady state's per-iteration
    /// load of the `B`-sequence characters (the "variable coefficient"
    /// of §3.4).
    ///
    /// # Safety
    /// All eight indices must be in bounds (checked by `debug_assert!`).
    #[inline(always)]
    pub unsafe fn gather_u8_i32(src: &[u8], base: usize, stride: isize) -> __m256i {
        let i = |k: isize| -> i32 {
            let idx = base as isize + k * stride;
            debug_assert!(idx >= 0 && (idx as usize) < src.len());
            // SAFETY: caller guarantees all eight gathered indices
            // `base + k*stride` (k = 0..8) are in bounds for `src`.
            unsafe { *src.get_unchecked(idx as usize) as i32 }
        };
        // SAFETY: `_mm256_setr_epi32` touches no memory; it is only gated
        // on AVX, which this fn's caller-proved feature set implies.
        unsafe { _mm256_setr_epi32(i(0), i(1), i(2), i(3), i(4), i(5), i(6), i(7)) }
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
// Justification: every test early-returns unless `avx2_available()`, and
// each unsafe op is a vocabulary call whose only precondition is that
// probe — a per-block SAFETY comment would repeat the same sentence
// dozens of times without adding information.
#[allow(clippy::undocumented_unsafe_blocks)]
mod tests {
    use super::avx2::*;
    use super::avx2_available;
    use crate::pack::{transpose, F64x4, I32x8, Pack};

    fn p(a: f64, b: f64, c: f64, d: f64) -> F64x4 {
        Pack([a, b, c, d])
    }

    #[test]
    fn pack_roundtrip() {
        if !avx2_available() {
            return;
        }
        let x = p(1.0, 2.0, 3.0, 4.0);
        assert_eq!(to_pack(from_pack(x)), x);
    }

    #[test]
    fn rotate_matches_portable() {
        if !avx2_available() {
            return;
        }
        let x = p(1.0, 2.0, 3.0, 4.0);
        let r = unsafe { rotate_up(from_pack(x)) };
        assert_eq!(to_pack(r), x.rotate_up());
    }

    #[test]
    fn blend_and_shift_match_portable() {
        if !avx2_available() {
            return;
        }
        let x = p(1.0, 2.0, 3.0, 4.0);
        let b = unsafe { blend_bottom(from_pack(x), 9.0) };
        assert_eq!(to_pack(b), x.replace(0, 9.0));
        let s = unsafe { shift_up_insert(from_pack(x), 9.0) };
        assert_eq!(to_pack(s), x.shift_up_insert(9.0));
    }

    #[test]
    fn fmadd_matches_portable_mul_add() {
        if !avx2_available() {
            return;
        }
        let a = p(1.5, -2.0, 3.25, 0.125);
        let b = p(2.0, 4.0, -1.0, 8.0);
        let c = p(0.1, 0.2, 0.3, 0.4);
        let r = unsafe { fmadd(from_pack(a), from_pack(b), from_pack(c)) };
        assert_eq!(to_pack(r), a.mul_add(b, c));
    }

    #[test]
    fn extract_top_is_lane3() {
        if !avx2_available() {
            return;
        }
        let x = p(1.0, 2.0, 3.0, 42.0);
        assert_eq!(unsafe { extract_top(from_pack(x)) }, 42.0);
    }

    #[test]
    fn gather_matches_portable() {
        if !avx2_available() {
            return;
        }
        let src: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
        for &(base, stride) in &[(0usize, 7isize), (21, -7), (5, 3), (63, -9)] {
            let g = unsafe { gather(&src, base, stride) };
            assert_eq!(to_pack(g), F64x4::gather(&src, base, stride));
        }
    }

    #[test]
    fn loadu_storeu_roundtrip() {
        if !avx2_available() {
            return;
        }
        let src: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 16];
        for at in 0..=12 {
            // SAFETY: at + 4 <= 16.
            unsafe { storeu(loadu(&src, at), &mut dst, at) };
        }
        assert_eq!(src, dst);
    }

    #[test]
    fn epi32_roundtrip_splat_extract() {
        if !avx2_available() {
            return;
        }
        let x = I32x8::from_fn(|i| i as i32 * 3 - 7);
        assert_eq!(to_pack_i32(from_pack_i32(x)), x);
        assert_eq!(to_pack_i32(splat_i32(-9)), I32x8::splat(-9));
        assert_eq!(unsafe { extract_top_i32(from_pack_i32(x)) }, x.top());
    }

    #[test]
    fn epi32_arithmetic_matches_portable() {
        if !avx2_available() {
            return;
        }
        let a = I32x8::from_fn(|i| (i as i32) * 5 - 13);
        let b = I32x8::from_fn(|i| 17 - (i as i32) * 3);
        let (va, vb) = (from_pack_i32(a), from_pack_i32(b));
        assert_eq!(to_pack_i32(unsafe { add_i32(va, vb) }), a + b);
        assert_eq!(to_pack_i32(unsafe { mullo_i32(va, vb) }), a * b);
        assert_eq!(to_pack_i32(unsafe { max_i32(va, vb) }), a.max(b));
        // Wrapping semantics match the portable Scalar contract.
        let big = I32x8::splat(i32::MAX);
        let one = I32x8::splat(1);
        assert_eq!(
            to_pack_i32(unsafe { add_i32(from_pack_i32(big), from_pack_i32(one)) }),
            big + one
        );
    }

    #[test]
    fn epi32_cmpeq_blendv_matches_portable_select() {
        if !avx2_available() {
            return;
        }
        let a = I32x8::from_fn(|i| (i % 3) as i32);
        let b = I32x8::from_fn(|i| (i % 2) as i32);
        let take = I32x8::from_fn(|i| 100 + i as i32);
        let other = I32x8::from_fn(|i| -(i as i32));
        let mask = unsafe { cmpeq_i32(from_pack_i32(a), from_pack_i32(b)) };
        let r = unsafe { blendv_i32(from_pack_i32(other), from_pack_i32(take), mask) };
        let gold = I32x8::select(a.eq_mask(b), take, other);
        assert_eq!(to_pack_i32(r), gold);
    }

    #[test]
    fn epi32_variable_shift_matches_scalar_rule_test() {
        if !avx2_available() {
            return;
        }
        // The Life rule test: (mask >> sum) & 1 for sums 0..=7 in lanes.
        let mask = I32x8::splat(0b1100);
        let sums = I32x8::from_fn(|i| i as i32);
        let r = unsafe {
            and_i32(
                srav_i32(from_pack_i32(mask), from_pack_i32(sums)),
                splat_i32(1),
            )
        };
        let gold = I32x8::from_fn(|i| (mask[i] >> sums[i]) & 1);
        assert_eq!(to_pack_i32(r), gold);
    }

    #[test]
    fn epi32_rotate_blend_identity_matches_portable() {
        if !avx2_available() {
            return;
        }
        // The steady state's input production: rotate + blend equals the
        // portable shift_up_insert, and fused == two-step.
        let x = I32x8::from_fn(|i| 10 * i as i32 + 1);
        let r = unsafe { rotate_up_i32(from_pack_i32(x)) };
        assert_eq!(to_pack_i32(r), x.rotate_up());
        let bl = unsafe { blend_bottom_i32(from_pack_i32(x), 99) };
        assert_eq!(to_pack_i32(bl), x.replace(0, 99));
        let fused = unsafe { shift_up_insert_i32(from_pack_i32(x), 99) };
        assert_eq!(to_pack_i32(fused), x.shift_up_insert(99));
        let two_step = unsafe { blend_bottom_i32(rotate_up_i32(from_pack_i32(x)), 99) };
        assert_eq!(to_pack_i32(two_step), x.rotate_up().replace(0, 99));
    }

    #[test]
    fn epi32_gathers_match_portable() {
        if !avx2_available() {
            return;
        }
        let bytes: Vec<u8> = (0..64).map(|i| (i * 7 % 251) as u8).collect();
        for &(base, stride) in &[(0usize, 1isize), (20, -2), (7, 8), (63, -9)] {
            let g = unsafe { gather_u8_i32(&bytes, base, stride) };
            let gold =
                I32x8::from_fn(|i| bytes[(base as isize + i as isize * stride) as usize] as i32);
            assert_eq!(to_pack_i32(g), gold, "base={base} stride={stride}");
        }
    }

    #[test]
    fn transpose4_matches_portable() {
        if !avx2_available() {
            return;
        }
        let rows: [F64x4; 4] = core::array::from_fn(|i| F64x4::from_fn(|j| (i * 10 + j) as f64));
        let mut expect = rows;
        transpose(&mut expect);

        let mut r0 = from_pack(rows[0]);
        let mut r1 = from_pack(rows[1]);
        let mut r2 = from_pack(rows[2]);
        let mut r3 = from_pack(rows[3]);
        unsafe { transpose4(&mut r0, &mut r1, &mut r2, &mut r3) };
        assert_eq!(to_pack(r0), expect[0]);
        assert_eq!(to_pack(r1), expect[1]);
        assert_eq!(to_pack(r2), expect[2]);
        assert_eq!(to_pack(r3), expect[3]);
    }
}
