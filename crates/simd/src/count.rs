//! Data-reorganization instruction accounting (§3.3, §3.5 of the paper).
//!
//! The paper's comparison between vectorization schemes is partly
//! *analytical*: it counts how many data-reorganization instructions each
//! scheme executes per produced output vector, split into
//!
//! * **in-lane** operations (shuffles that stay within a 128-bit half of a
//!   256-bit register, ~1 cycle latency: `vblendpd`, `vshufpd`,
//!   `vunpcklpd`, …), and
//! * **lane-crossing** operations (permutes that move data across the
//!   128-bit boundary, ~3 cycle latency: `vpermpd`, `vperm2f128`, …).
//!
//! The claimed budgets (per output vector, 1D3P Jacobi, `vl = 4`):
//!
//! | scheme | in-lane | lane-crossing | total |
//! |---|---|---|---|
//! | temporal, naive (Alg. 3) | 2.5 | 1.0 | 3.5 |
//! | temporal, dual-stride (§3.3) | 2.0 | 0.75 | 2.75 |
//! | data-reorganization baseline | 2.0 | 1.0 | 3.0 (grows with order/dim) |
//!
//! This module provides a thread-local counting session that the
//! `*_counted` kernel variants in `tempora-core` and `tempora-baseline`
//! tick, so unit tests and the `repro ablate-reorg` harness can verify the
//! claims empirically instead of trusting the arithmetic.
//!
//! Counting is off by default and never enabled on hot benchmark paths;
//! the counted kernels are separate entry points used only for analysis.

use core::cell::Cell;

/// Classification of a vector data-movement operation (the paper's §3.3
/// taxonomy plus memory-side categories used by the traffic ablation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Shuffle/blend that stays within 128-bit lanes (~1 cycle).
    InLane,
    /// Permute that crosses the 128-bit lane boundary (~3 cycles).
    CrossLane,
    /// Strided element gather (`vloadset` / `_mm256_set_pd`).
    Gather,
    /// Full-width contiguous vector load.
    VecLoad,
    /// Full-width contiguous vector store.
    VecStore,
    /// Scalar element insert into a vector register.
    ScalarInsert,
    /// Scalar element extract from a vector register.
    ScalarExtract,
}

/// Aggregated operation counts for one counting session.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Counts {
    /// In-lane shuffles/blends.
    pub in_lane: u64,
    /// Lane-crossing permutes.
    pub cross_lane: u64,
    /// Strided gathers.
    pub gather: u64,
    /// Contiguous vector loads.
    pub vec_load: u64,
    /// Contiguous vector stores.
    pub vec_store: u64,
    /// Scalar inserts.
    pub scalar_insert: u64,
    /// Scalar extracts.
    pub scalar_extract: u64,
    /// Output vectors produced (the denominator of the paper's
    /// per-output-vector budgets). Kernels tick this via [`record_output`].
    pub output_vectors: u64,
}

impl Counts {
    /// Total reorganization instructions (in-lane + lane-crossing), the
    /// quantity the paper bounds by a constant.
    pub fn reorg_total(&self) -> u64 {
        self.in_lane + self.cross_lane
    }

    /// In-lane operations per produced output vector.
    pub fn in_lane_per_output(&self) -> f64 {
        self.in_lane as f64 / self.output_vectors.max(1) as f64
    }

    /// Lane-crossing operations per produced output vector.
    pub fn cross_lane_per_output(&self) -> f64 {
        self.cross_lane as f64 / self.output_vectors.max(1) as f64
    }

    /// Total reorganization operations per produced output vector.
    pub fn reorg_per_output(&self) -> f64 {
        self.reorg_total() as f64 / self.output_vectors.max(1) as f64
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COUNTS: Cell<Counts> = const { Cell::new(Counts {
        in_lane: 0, cross_lane: 0, gather: 0, vec_load: 0, vec_store: 0,
        scalar_insert: 0, scalar_extract: 0, output_vectors: 0,
    }) };
}

/// Record `n` operations of class `op` into the active session (no-op when
/// no session is active).
#[inline]
pub fn record(op: Op, n: u64) {
    ACTIVE.with(|a| {
        if a.get() {
            COUNTS.with(|c| {
                let mut v = c.get();
                match op {
                    Op::InLane => v.in_lane += n,
                    Op::CrossLane => v.cross_lane += n,
                    Op::Gather => v.gather += n,
                    Op::VecLoad => v.vec_load += n,
                    Op::VecStore => v.vec_store += n,
                    Op::ScalarInsert => v.scalar_insert += n,
                    Op::ScalarExtract => v.scalar_extract += n,
                }
                c.set(v);
            });
        }
    });
}

/// Record `n` produced output vectors into the active session.
#[inline]
pub fn record_output(n: u64) {
    ACTIVE.with(|a| {
        if a.get() {
            COUNTS.with(|c| {
                let mut v = c.get();
                v.output_vectors += n;
                c.set(v);
            });
        }
    });
}

/// RAII counting session. Creating a session zeroes the thread-local
/// counters and enables recording; [`Session::finish`] (or drop) disables
/// recording. Sessions must not be nested.
pub struct Session {
    done: bool,
}

impl Session {
    /// Start a counting session on this thread.
    ///
    /// # Panics
    /// Panics if a session is already active (nesting would silently merge
    /// unrelated measurements).
    pub fn start() -> Self {
        ACTIVE.with(|a| {
            assert!(!a.get(), "count::Session must not be nested");
            a.set(true);
        });
        COUNTS.with(|c| c.set(Counts::default()));
        Session { done: false }
    }

    /// Stop recording and return the aggregated counts.
    pub fn finish(mut self) -> Counts {
        self.done = true;
        ACTIVE.with(|a| a.set(false));
        COUNTS.with(|c| c.get())
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.done {
            ACTIVE.with(|a| a.set(false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_collects_and_resets() {
        let s = Session::start();
        record(Op::InLane, 2);
        record(Op::CrossLane, 1);
        record(Op::Gather, 3);
        record_output(4);
        let c = s.finish();
        assert_eq!(c.in_lane, 2);
        assert_eq!(c.cross_lane, 1);
        assert_eq!(c.gather, 3);
        assert_eq!(c.output_vectors, 4);
        assert_eq!(c.reorg_total(), 3);
        assert_eq!(c.in_lane_per_output(), 0.5);

        // A new session starts from zero.
        let s2 = Session::start();
        let c2 = s2.finish();
        assert_eq!(c2, Counts::default());
    }

    #[test]
    fn recording_outside_session_is_a_noop() {
        record(Op::CrossLane, 100);
        let s = Session::start();
        let c = s.finish();
        assert_eq!(c.cross_lane, 0);
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn nested_sessions_panic() {
        let _a = Session::start();
        let _b = Session::start();
    }

    #[test]
    fn concurrent_sessions_are_thread_isolated() {
        // paper_claims.rs trusts these counters for the §3.2 constant-cost
        // claim; a session must never observe another thread's operations,
        // and two live sessions on different threads must not be treated
        // as "nested".
        let t1 = std::thread::spawn(|| {
            let s = Session::start();
            record(Op::CrossLane, 5);
            record_output(5);
            std::thread::sleep(std::time::Duration::from_millis(20));
            s.finish()
        });
        let t2 = std::thread::spawn(|| {
            let s = Session::start();
            record(Op::InLane, 3);
            std::thread::sleep(std::time::Duration::from_millis(20));
            s.finish()
        });
        let c1 = t1.join().unwrap();
        let c2 = t2.join().unwrap();
        assert_eq!((c1.cross_lane, c1.in_lane, c1.output_vectors), (5, 0, 5));
        assert_eq!((c2.cross_lane, c2.in_lane, c2.output_vectors), (0, 3, 0));
    }

    #[test]
    fn sequential_sessions_do_not_accumulate() {
        // Back-to-back start/finish pairs each see only their own ops —
        // no carry-over that would double-count per-output budgets.
        for round in 1..=3u64 {
            let s = Session::start();
            record(Op::InLane, round);
            record_output(1);
            let c = s.finish();
            assert_eq!(c.in_lane, round, "round {round} leaked prior counts");
            assert_eq!(c.output_vectors, 1);
        }
    }

    #[test]
    fn dropped_session_disables_recording() {
        {
            let _s = Session::start();
            record(Op::Gather, 9);
            // Dropped without finish (e.g. a panicking measurement).
        }
        // If Drop failed to deactivate, this start() would hit the
        // "must not be nested" assertion; a fresh session starts clean.
        let s = Session::start();
        record(Op::Gather, 2);
        let c = s.finish();
        assert_eq!(c.gather, 2);
    }

    #[test]
    fn per_output_ratios_guard_div_by_zero() {
        let c = Counts {
            in_lane: 7,
            ..Counts::default()
        };
        assert_eq!(c.in_lane_per_output(), 7.0);
    }
}
