//! Portable fixed-width SIMD packs.
//!
//! Rust has no stable `std::simd`, so the repository carries its own pack
//! type. [`Pack<T, N>`] is a cache-friendly, 32-byte aligned fixed-size
//! vector whose operations mirror the instruction set the paper's kernels
//! are written against (AVX on the authors' machine):
//!
//! * element-wise arithmetic (`+`, `-`, `*`, [`Pack::mul_add`],
//!   [`Pack::min`], [`Pack::max`]),
//! * the data-reorganization operations of Algorithm 3 — lane rotation
//!   ([`Pack::rotate_up`], the paper's `vrotate`), lane replacement
//!   ([`Pack::replace`], the paper's `vblend` with an immediate mask), and
//!   strided gathers ([`Pack::gather`], the paper's `vloadset` /
//!   `_mm256_set_pd`),
//! * comparisons producing [`Mask`]s plus [`Pack::select`] (used by the
//!   LCS kernel's equality blend),
//! * cross-pack shuffles used by the spatial-vectorization baselines
//!   ([`Pack::align_pair`], the `palignr`-style concatenate-and-shift).
//!
//! With `-C target-cpu=native` LLVM lowers these packs onto the native
//! vector unit; the [`crate::arch`] module additionally provides hand-rolled
//! `std::arch` AVX2 versions of the hot operations, which are
//! equivalence-tested against this portable model.
//!
//! # Lane convention
//!
//! Lane `0` is the **lowest** (least significant, first in memory) lane and
//! lane `N-1` the **highest** ("top") lane. The temporal-vectorization
//! convention used throughout the workspace stores *older* time coordinates
//! in *lower* lanes; see `tempora-core` for the full picture.

use core::fmt;
use core::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// Element types that can live inside a [`Pack`].
///
/// The trait deliberately exposes a *closed* set of deterministic scalar
/// operations: every kernel in the workspace (scalar reference, baseline and
/// temporal) is written against these exact operations, so optimized paths
/// can be compared **bit-for-bit** against the scalar oracle. In particular
/// `Scalar::mul_add` is always the IEEE-754 fused multiply-add for floats
/// (never contracted or un-contracted by the optimizer behind our back) and
/// integer arithmetic wraps (the kernels keep values far from the limits;
/// wrapping avoids spurious overflow panics under `overflow-checks = true`).
pub trait Scalar:
    Copy + PartialEq + PartialOrd + Default + fmt::Debug + Send + Sync + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// A poison value that no correct kernel should ever produce or read:
    /// `NaN` for floats, a recognizable sentinel for integers. Test
    /// harnesses fill padding regions with it to detect out-of-bounds
    /// accesses (see `tempora-grid`).
    const CANARY: Self;

    /// `self + rhs` (wrapping for integers).
    fn add_s(self, rhs: Self) -> Self;
    /// `self - rhs` (wrapping for integers).
    fn sub_s(self, rhs: Self) -> Self;
    /// `self * rhs` (wrapping for integers).
    fn mul_s(self, rhs: Self) -> Self;
    /// Fused `self * m + a` for floats; wrapping `self * m + a` for integers.
    fn mul_add_s(self, m: Self, a: Self) -> Self;
    /// Numeric minimum.
    fn min_s(self, rhs: Self) -> Self;
    /// Numeric maximum.
    fn max_s(self, rhs: Self) -> Self;
    /// Negation.
    fn neg_s(self) -> Self;
    /// Lossy conversion from `usize`, for test patterns and initializers.
    fn from_index(i: usize) -> Self;
    /// Lossy conversion to `f64`, for error metrics and reporting.
    fn to_f64(self) -> f64;
    /// Branch-free conditional: `if m { a } else { b }`. Integer
    /// implementations use bit masking so data-dependent selects never
    /// become mispredicted branches; float implementations rely on the
    /// compiler's conditional-move/blend lowering.
    fn select_s(m: bool, a: Self, b: Self) -> Self;
    /// True when the value is the canary / poison pattern (`NaN`-aware for
    /// floats, where `== CANARY` would always be false).
    fn is_canary(self) -> bool;
}

macro_rules! impl_scalar_float {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const CANARY: Self = <$t>::NAN;
            #[inline(always)]
            fn add_s(self, rhs: Self) -> Self {
                self + rhs
            }
            #[inline(always)]
            fn sub_s(self, rhs: Self) -> Self {
                self - rhs
            }
            #[inline(always)]
            fn mul_s(self, rhs: Self) -> Self {
                self * rhs
            }
            #[inline(always)]
            fn mul_add_s(self, m: Self, a: Self) -> Self {
                self.mul_add(m, a)
            }
            #[inline(always)]
            fn min_s(self, rhs: Self) -> Self {
                if self < rhs {
                    self
                } else {
                    rhs
                }
            }
            #[inline(always)]
            fn max_s(self, rhs: Self) -> Self {
                if self > rhs {
                    self
                } else {
                    rhs
                }
            }
            #[inline(always)]
            fn neg_s(self) -> Self {
                -self
            }
            #[inline(always)]
            fn from_index(i: usize) -> Self {
                i as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn is_canary(self) -> bool {
                self.is_nan()
            }
            #[inline(always)]
            fn select_s(m: bool, a: Self, b: Self) -> Self {
                if m {
                    a
                } else {
                    b
                }
            }
        }
    };
}

macro_rules! impl_scalar_int {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            // 0x5A repeated: stands out in hex dumps and is far from the
            // small values the integer kernels (Life, LCS) produce.
            const CANARY: Self = 0x5A5A5A5A as $t;
            #[inline(always)]
            fn add_s(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }
            #[inline(always)]
            fn sub_s(self, rhs: Self) -> Self {
                self.wrapping_sub(rhs)
            }
            #[inline(always)]
            fn mul_s(self, rhs: Self) -> Self {
                self.wrapping_mul(rhs)
            }
            #[inline(always)]
            fn mul_add_s(self, m: Self, a: Self) -> Self {
                self.wrapping_mul(m).wrapping_add(a)
            }
            #[inline(always)]
            fn min_s(self, rhs: Self) -> Self {
                if self < rhs {
                    self
                } else {
                    rhs
                }
            }
            #[inline(always)]
            fn max_s(self, rhs: Self) -> Self {
                if self > rhs {
                    self
                } else {
                    rhs
                }
            }
            #[inline(always)]
            fn neg_s(self) -> Self {
                self.wrapping_neg()
            }
            #[inline(always)]
            fn from_index(i: usize) -> Self {
                i as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn is_canary(self) -> bool {
                self == Self::CANARY
            }
            #[inline(always)]
            fn select_s(m: bool, a: Self, b: Self) -> Self {
                let mask = (m as $t).wrapping_neg();
                (a & mask) | (b & !mask)
            }
        }
    };
}

impl_scalar_float!(f32);
impl_scalar_float!(f64);
impl_scalar_int!(i32);
impl_scalar_int!(i64);

/// A per-lane boolean mask produced by pack comparisons and consumed by
/// [`Pack::select`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mask<const N: usize>(pub [bool; N]);

impl<const N: usize> Mask<N> {
    /// Mask with every lane set to `b`.
    #[inline(always)]
    pub fn splat(b: bool) -> Self {
        Mask([b; N])
    }

    /// Build a mask lane-by-lane.
    #[inline(always)]
    pub fn from_fn(f: impl FnMut(usize) -> bool) -> Self {
        Mask(core::array::from_fn(f))
    }

    /// True if any lane is set.
    #[inline(always)]
    pub fn any(&self) -> bool {
        self.0.iter().any(|&b| b)
    }

    /// True if every lane is set.
    #[inline(always)]
    pub fn all(&self) -> bool {
        self.0.iter().all(|&b| b)
    }

    /// Lane-wise logical AND (non-short-circuit, branchless).
    #[inline(always)]
    pub fn and(self, rhs: Self) -> Self {
        Mask(core::array::from_fn(|i| self.0[i] & rhs.0[i]))
    }

    /// Lane-wise logical OR (non-short-circuit, branchless).
    #[inline(always)]
    pub fn or(self, rhs: Self) -> Self {
        Mask(core::array::from_fn(|i| self.0[i] | rhs.0[i]))
    }

    /// Lane-wise logical NOT.
    ///
    /// An inherent method (not the `std::ops::Not` trait) so call sites
    /// read as the mask vocabulary `m.not().and(k)` used throughout.
    #[inline(always)]
    // Justification: lane-wise logical not; an inherent method keeps call sites trait-import-free.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Mask(core::array::from_fn(|i| !self.0[i]))
    }
}

/// Fixed-width SIMD pack of `N` lanes of `T`.
///
/// See the [module documentation](self) for the lane convention and the
/// mapping onto the paper's vector operations.
#[derive(Clone, Copy, PartialEq)]
#[repr(C, align(32))]
pub struct Pack<T, const N: usize>(pub [T; N]);

impl<T: Scalar, const N: usize> Default for Pack<T, N> {
    #[inline(always)]
    fn default() -> Self {
        Self::splat(T::ZERO)
    }
}

impl<T: Scalar, const N: usize> fmt::Debug for Pack<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pack{:?}", self.0)
    }
}

impl<T: Scalar, const N: usize> Pack<T, N> {
    /// Number of lanes.
    pub const LANES: usize = N;

    /// Pack with every lane equal to `v` (a broadcast).
    #[inline(always)]
    pub fn splat(v: T) -> Self {
        Pack([v; N])
    }

    /// Build a pack lane-by-lane.
    #[inline(always)]
    pub fn from_fn(f: impl FnMut(usize) -> T) -> Self {
        Pack(core::array::from_fn(f))
    }

    /// Contiguous load of `N` elements starting at `src[at]`.
    ///
    /// Panics (via slice indexing) if the range is out of bounds. This is
    /// the portable stand-in for both aligned and unaligned vector loads;
    /// the distinction only matters in [`crate::arch`].
    #[inline(always)]
    pub fn load(src: &[T], at: usize) -> Self {
        let s = &src[at..at + N];
        Pack(core::array::from_fn(|i| s[i]))
    }

    /// Contiguous store of all `N` lanes into `dst[at..at+N]`.
    #[inline(always)]
    pub fn store(self, dst: &mut [T], at: usize) {
        dst[at..at + N].copy_from_slice(&self.0);
    }

    /// Strided gather: lane `i` reads `src[(base as isize + i as isize*stride) as usize]`.
    ///
    /// This is the paper's `vloadset` (`_mm256_set_pd`): the initial input
    /// vectors of the temporal scheme gather values whose spacing in memory
    /// is the space stride `s` (§3.2, Algorithm 3 lines 5-7). `stride` may
    /// be negative, which the temporal convention uses to place *older*
    /// time coordinates (lower lanes) at *larger* space coordinates.
    #[inline(always)]
    pub fn gather(src: &[T], base: usize, stride: isize) -> Self {
        Pack(core::array::from_fn(|i| {
            let idx = base as isize + i as isize * stride;
            src[idx as usize]
        }))
    }

    /// Strided scatter: lane `i` writes `dst[(base as isize + i as isize*stride) as usize]`.
    #[inline(always)]
    pub fn scatter(self, dst: &mut [T], base: usize, stride: isize) {
        for i in 0..N {
            let idx = base as isize + i as isize * stride;
            dst[idx as usize] = self.0[i];
        }
    }

    /// Extract lane `i`.
    #[inline(always)]
    pub fn extract(self, i: usize) -> T {
        self.0[i]
    }

    /// Return a copy with lane `i` replaced by `v`.
    ///
    /// This is the paper's `vblend` with a one-hot immediate mask
    /// (Algorithm 3 line 14 blends the new bottom element into the rotated
    /// output vector).
    #[inline(always)]
    pub fn replace(mut self, i: usize, v: T) -> Self {
        self.0[i] = v;
        self
    }

    /// The highest ("top") lane, `N-1`.
    #[inline(always)]
    pub fn top(self) -> T {
        self.0[N - 1]
    }

    /// The lowest ("bottom") lane, `0`.
    #[inline(always)]
    pub fn bottom(self) -> T {
        self.0[0]
    }

    /// Rotate lanes one step towards the top: lane `j` of the result is lane
    /// `j-1` of the input, and the old top lane wraps around to lane `0`.
    ///
    /// This is the paper's `vrotate` (Algorithm 3 line 13). On AVX it is a
    /// *lane-crossing* permute (`vpermpd`, ~3 cycle latency) — see
    /// [`crate::count`] for the in-lane/lane-crossing cost model of §3.3.
    #[inline(always)]
    pub fn rotate_up(self) -> Self {
        Pack(core::array::from_fn(|j| self.0[(j + N - 1) % N]))
    }

    /// Rotate lanes one step towards the bottom: lane `j` of the result is
    /// lane `j+1` of the input, and the old bottom lane wraps to lane `N-1`.
    #[inline(always)]
    pub fn rotate_down(self) -> Self {
        Pack(core::array::from_fn(|j| self.0[(j + 1) % N]))
    }

    /// The steady-state input-vector production rule of the temporal scheme
    /// (Algorithm 3 lines 13-14 fused): shift every lane one step up,
    /// dropping the old top lane, and insert `bottom` into lane 0.
    ///
    /// Given an output vector `(a⁴_x, a³_{x+s}, a²_{x+2s}, a¹_{x+3s})`
    /// (top lane listed first) and the new bottom element `a⁰_{x+4s}`, this
    /// produces the next input vector `(a³_{x+s}, a²_{x+2s}, a¹_{x+3s},
    /// a⁰_{x+4s})`.
    #[inline(always)]
    pub fn shift_up_insert(self, bottom: T) -> Self {
        Pack(core::array::from_fn(|j| {
            if j == 0 {
                bottom
            } else {
                self.0[j - 1]
            }
        }))
    }

    /// The mirror of [`Pack::shift_up_insert`]: shift every lane one step
    /// down, dropping the old bottom lane, and insert `top` into lane
    /// `N-1`. Used by the DLT baseline's right-edge column assembly.
    #[inline(always)]
    pub fn shift_down_insert(self, top: T) -> Self {
        Pack(core::array::from_fn(|j| {
            if j == N - 1 {
                top
            } else {
                self.0[j + 1]
            }
        }))
    }

    /// Concatenate `lo ++ hi` (as 2N lanes, `lo` in the lower half) and
    /// extract `N` consecutive lanes starting at lane `shift`.
    ///
    /// `align_pair(a, b, 0) == a`, `align_pair(a, b, N) == b`. This is the
    /// `palignr`/`valignd`-style shuffle used by the data-reorganization
    /// baseline (§2.2) to assemble unaligned neighbour vectors from two
    /// aligned loads.
    #[inline(always)]
    pub fn align_pair(lo: Self, hi: Self, shift: usize) -> Self {
        debug_assert!(shift <= N);
        Pack(core::array::from_fn(|j| {
            let k = j + shift;
            if k < N {
                lo.0[k]
            } else {
                hi.0[k - N]
            }
        }))
    }

    /// Reverse the lane order.
    #[inline(always)]
    pub fn reverse(self) -> Self {
        Pack(core::array::from_fn(|j| self.0[N - 1 - j]))
    }

    /// Fused multiply-add, lane-wise: `self * m + a`.
    ///
    /// Every floating-point kernel in the workspace goes through this single
    /// deterministic operation so that scalar references and vectorized
    /// kernels agree bit-for-bit.
    #[inline(always)]
    pub fn mul_add(self, m: Self, a: Self) -> Self {
        Pack(core::array::from_fn(|i| {
            self.0[i].mul_add_s(m.0[i], a.0[i])
        }))
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        Pack(core::array::from_fn(|i| self.0[i].min_s(rhs.0[i])))
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        Pack(core::array::from_fn(|i| self.0[i].max_s(rhs.0[i])))
    }

    /// Lane-wise equality mask.
    #[inline(always)]
    pub fn eq_mask(self, rhs: Self) -> Mask<N> {
        Mask(core::array::from_fn(|i| self.0[i] == rhs.0[i]))
    }

    /// Lane-wise `<` mask.
    #[inline(always)]
    pub fn lt_mask(self, rhs: Self) -> Mask<N> {
        Mask(core::array::from_fn(|i| self.0[i] < rhs.0[i]))
    }

    /// Lane-wise select: lane `i` of the result is `a[i]` where `mask[i]`
    /// is set and `b[i]` otherwise (the AVX `blendv` family).
    #[inline(always)]
    pub fn select(mask: Mask<N>, a: Self, b: Self) -> Self {
        Pack(core::array::from_fn(|i| {
            T::select_s(mask.0[i], a.0[i], b.0[i])
        }))
    }

    /// Lane-wise application of an arbitrary scalar function (slow path —
    /// used by tests and non-hot code only).
    #[inline]
    pub fn map(self, mut f: impl FnMut(T) -> T) -> Self {
        Pack(core::array::from_fn(|i| f(self.0[i])))
    }

    /// Horizontal sum (`lane 0 + lane 1 + …`, left to right — the order is
    /// part of the contract so tests can reproduce it exactly).
    #[inline(always)]
    pub fn hsum(self) -> T {
        let mut acc = self.0[0];
        for i in 1..N {
            acc = acc.add_s(self.0[i]);
        }
        acc
    }

    /// View as an immutable slice of lanes.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.0
    }
}

impl<T: Scalar, const N: usize> Add for Pack<T, N> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Pack(core::array::from_fn(|i| self.0[i].add_s(rhs.0[i])))
    }
}

impl<T: Scalar, const N: usize> Sub for Pack<T, N> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Pack(core::array::from_fn(|i| self.0[i].sub_s(rhs.0[i])))
    }
}

impl<T: Scalar, const N: usize> Mul for Pack<T, N> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Pack(core::array::from_fn(|i| self.0[i].mul_s(rhs.0[i])))
    }
}

impl<T: Scalar, const N: usize> Neg for Pack<T, N> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Pack(core::array::from_fn(|i| self.0[i].neg_s()))
    }
}

impl<T, const N: usize> Index<usize> for Pack<T, N> {
    type Output = T;
    #[inline(always)]
    fn index(&self, i: usize) -> &T {
        &self.0[i]
    }
}

impl<T, const N: usize> IndexMut<usize> for Pack<T, N> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.0[i]
    }
}

/// In-register `N×N` transpose: `rows[i][j]` becomes `rows[j][i]`.
///
/// Used by the DLT baseline (§2.2) and by the temporal scheme's initial
/// input-vector loading / final output-vector storing (§3.3): `N`
/// consecutive vectors holding same-time values are transposed into `N`
/// input vectors holding mixed-time values, and vice versa.
#[inline]
pub fn transpose<T: Scalar, const N: usize>(rows: &mut [Pack<T, N>; N]) {
    for i in 0..N {
        for j in (i + 1)..N {
            let a = rows[i].0[j];
            let b = rows[j].0[i];
            rows[i].0[j] = b;
            rows[j].0[i] = a;
        }
    }
}

/// Common 4-lane double-precision pack — the paper's AVX `vl = 4` register.
pub type F64x4 = Pack<f64, 4>;
/// 8-lane single-precision pack.
pub type F32x8 = Pack<f32, 8>;
/// 8-lane 32-bit integer pack — used by the Life and LCS kernels
/// (`vl = 8`, the paper's "theoretical maximal speedup of 8" for LCS).
pub type I32x8 = Pack<i32, 8>;
/// 4-lane 64-bit integer pack.
pub type I64x4 = Pack<i64, 4>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_extract() {
        let p = F64x4::splat(2.5);
        for i in 0..4 {
            assert_eq!(p.extract(i), 2.5);
        }
        assert_eq!(p.top(), 2.5);
        assert_eq!(p.bottom(), 2.5);
    }

    #[test]
    fn load_store_roundtrip() {
        let src: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 16];
        for at in 0..=12 {
            let p = F64x4::load(&src, at);
            p.store(&mut dst, at);
        }
        assert_eq!(src, dst);
    }

    #[test]
    fn gather_negative_stride_matches_temporal_layout() {
        // Input vector of Algorithm 3 line 5 with s = 2:
        // lane 3 = a[x], lane 2 = a[x+s], lane 1 = a[x+2s], lane 0 = a[x+3s]
        // i.e. base = x + 3s, stride = -s walking lane 0 -> 3.
        let a: Vec<f64> = (0..32).map(|i| i as f64 * 10.0).collect();
        let (x, s) = (3usize, 2isize);
        let base = x + 3 * s as usize;
        let v = F64x4::gather(&a, base, -s);
        assert_eq!(v.0, [a[x + 6], a[x + 4], a[x + 2], a[x]]);
    }

    #[test]
    fn scatter_inverts_gather() {
        let src: Vec<i32> = (0..64).collect();
        let v = I32x8::gather(&src, 7, 7);
        let mut dst = vec![0i32; 64];
        v.scatter(&mut dst, 7, 7);
        for i in 0..8 {
            assert_eq!(dst[7 + 7 * i], src[7 + 7 * i]);
        }
    }

    #[test]
    fn rotate_up_matches_paper_vrotate() {
        // Paper line 13: (a4, a3, a2, a1) -> (a3, a2, a1, a4), written
        // top-lane-first. In lane-index order (bottom first) that is
        // (a1, a2, a3, a4) -> (a4, a1, a2, a3).
        let v = Pack([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.rotate_up().0, [4.0, 1.0, 2.0, 3.0]);
        assert_eq!(v.rotate_down().0, [2.0, 3.0, 4.0, 1.0]);
        assert_eq!(v.rotate_up().rotate_down(), v);
    }

    #[test]
    fn shift_up_insert_is_rotate_plus_blend() {
        let o = Pack([1.0, 2.0, 3.0, 4.0]);
        let fused = o.shift_up_insert(0.5);
        let two_step = o.rotate_up().replace(0, 0.5);
        assert_eq!(fused, two_step);
        assert_eq!(fused.0, [0.5, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn shift_down_insert_is_rotate_plus_blend() {
        let o = Pack([1.0, 2.0, 3.0, 4.0]);
        let fused = o.shift_down_insert(9.0);
        assert_eq!(fused, o.rotate_down().replace(3, 9.0));
        assert_eq!(fused.0, [2.0, 3.0, 4.0, 9.0]);
        // shift_down inverts shift_up on the overlapping lanes.
        let up = o.shift_up_insert(0.0);
        assert_eq!(up.shift_down_insert(9.0).0, [1.0, 2.0, 3.0, 9.0]);
    }

    #[test]
    fn align_pair_endpoints_and_middle() {
        let a = I32x8::from_fn(|i| i as i32);
        let b = I32x8::from_fn(|i| 100 + i as i32);
        assert_eq!(I32x8::align_pair(a, b, 0), a);
        assert_eq!(I32x8::align_pair(a, b, 8), b);
        let m = I32x8::align_pair(a, b, 3);
        assert_eq!(m.0, [3, 4, 5, 6, 7, 100, 101, 102]);
    }

    #[test]
    fn mul_add_is_fused() {
        // With a true FMA the product is kept at full precision before the
        // add; (1 + 2^-30)^2 - 1 - 2*2^-30 == 2^-60 exactly under FMA but 0
        // under separate rounding.
        let eps = (2.0f64).powi(-30);
        let x = 1.0 + eps;
        let p = F64x4::splat(x);
        let r = p.mul_add(p, F64x4::splat(-(1.0 + 2.0 * eps)));
        assert_eq!(r.extract(0), (2.0f64).powi(-60));
    }

    #[test]
    fn select_and_masks() {
        let a = I32x8::from_fn(|i| i as i32);
        let b = I32x8::splat(-1);
        let m = a.lt_mask(I32x8::splat(4));
        let r = I32x8::select(m, a, b);
        assert_eq!(r.0, [0, 1, 2, 3, -1, -1, -1, -1]);
        assert!(m.any() && !m.all());
        assert_eq!(m.not().and(m), Mask::splat(false));
        assert_eq!(m.not().or(m), Mask::splat(true));
    }

    #[test]
    fn eq_mask_lcs_blend_shape() {
        // The LCS kernel: select(eq, diag + 1, max(left, up)).
        let diag = I32x8::splat(5);
        let left = I32x8::from_fn(|i| i as i32);
        let up = I32x8::from_fn(|i| 7 - i as i32);
        let a = I32x8::from_fn(|i| (i % 2) as i32);
        let b = I32x8::splat(1);
        let eq = a.eq_mask(b);
        let r = I32x8::select(eq, diag + I32x8::splat(1), left.max(up));
        for i in 0..8 {
            let expect = if i % 2 == 1 {
                6
            } else {
                (i as i32).max(7 - i as i32)
            };
            assert_eq!(r.extract(i), expect);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rows: [F64x4; 4] =
            core::array::from_fn(|i| F64x4::from_fn(|j| (10 * i + j) as f64));
        let orig = rows;
        transpose(&mut rows);
        for (i, row) in rows.iter().enumerate() {
            for (j, v) in row.0.iter().enumerate() {
                assert_eq!(*v, orig[j].0[i]);
            }
        }
        transpose(&mut rows);
        assert_eq!(rows, orig);
    }

    #[test]
    fn hsum_order_is_left_to_right() {
        let p = Pack([1e16, 1.0, -1e16, 1.0]);
        // ((1e16 + 1) - 1e16) + 1 = 1 under f64 (1e16+1 rounds to 1e16).
        assert_eq!(p.hsum(), 1.0);
    }

    #[test]
    fn alignment_is_32_bytes() {
        assert_eq!(core::mem::align_of::<F64x4>(), 32);
        assert_eq!(core::mem::align_of::<I32x8>(), 32);
        let v = [F64x4::default(); 3];
        for p in &v {
            assert_eq!(p as *const _ as usize % 32, 0);
        }
    }

    #[test]
    fn arithmetic_elementwise() {
        let a = Pack([1.0, 2.0, 3.0, 4.0]);
        let b = Pack([0.5, 0.25, 2.0, -1.0]);
        assert_eq!((a + b).0, [1.5, 2.25, 5.0, 3.0]);
        assert_eq!((a - b).0, [0.5, 1.75, 1.0, 5.0]);
        assert_eq!((a * b).0, [0.5, 0.5, 6.0, -4.0]);
        assert_eq!((-a).0, [-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(a.min(b).0, [0.5, 0.25, 2.0, -1.0]);
        assert_eq!(a.max(b).0, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn reverse_lanes() {
        let a = I32x8::from_fn(|i| i as i32);
        assert_eq!(a.reverse().0, [7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn integer_ops_wrap_instead_of_panicking() {
        let a = I32x8::splat(i32::MAX);
        let r = a + I32x8::splat(1);
        assert_eq!(r.extract(0), i32::MIN);
        let m = I32x8::splat(i32::MAX).mul_add(I32x8::splat(2), I32x8::splat(3));
        assert_eq!(m.extract(0), i32::MAX.wrapping_mul(2).wrapping_add(3));
    }
}
