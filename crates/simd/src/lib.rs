//! # tempora-simd — SIMD substrate for temporal stencil vectorization
//!
//! This crate is the lowest layer of the *tempora* workspace, a from-scratch
//! reproduction of **"Temporal Vectorization for Stencils"** (Yuan, Cao,
//! Zhang, Li, Lu, Yue — SC'21, arXiv:2010.04868). It provides:
//!
//! * [`pack::Pack`] — a portable, 32-byte-aligned, `N`-lane vector type
//!   with exactly the operation vocabulary the paper's algorithms use
//!   (`vloadset` gathers, `vrotate`, `vblend`, aligned loads/stores,
//!   fused multiply-add, compare/select, in-register transpose);
//! * [`count`] — the in-lane / lane-crossing reorganization-instruction
//!   cost model of §3.3, as a thread-local counting session used to verify
//!   the paper's per-output-vector instruction budgets;
//! * [`arch`] — `std::arch` AVX2 implementations of the hot operations,
//!   equivalence-tested against the portable model.
//!
//! ## Temporal lane convention (paper Figure 1)
//!
//! A temporal **input vector** with space stride `s` packs one value from
//! each of `vl` consecutive time levels, `s` grid points apart (top lane
//! first, as the paper writes them):
//!
//! ```text
//!            lane 3     lane 2      lane 1      lane 0
//!   V(x) = ( a[t+3][x], a[t+2][x+s], a[t+1][x+2s], a[t][x+3s] )
//!
//!   t+4 |        .  o  .  .  .  .  .  .  .          o = O(x) lanes
//!   t+3 |        .  v  .  o  .  .  .  .  .          v = V(x) lanes
//!   t+2 |        .  .  .  v  .  o  .  .  .          (s = 2)
//!   t+1 |        .  .  .  .  .  v  .  o  .
//!   t   |        .  .  .  .  .  .  .  v  .
//!        --------------------------------> x
//! ```
//!
//! One stencil application on `V(x-1), V(x), V(x+1)` produces the **output
//! vector** `O(x) = (a[t+4][x], a[t+3][x+s], a[t+2][x+2s], a[t+1][x+3s])`,
//! advancing *four time levels at once*. `O(x).shift_up_insert(a[t][x+4s])`
//! then yields `V(x+s)` — a single rotate + blend, the paper's constant
//! reorganization cost.
//!
//! Higher layers: `tempora-grid` (containers), `tempora-stencil` (problem
//! definitions + scalar oracles), `tempora-baseline` (spatial schemes),
//! `tempora-core` (the temporal engines), `tempora-tiling`,
//! `tempora-parallel`, `tempora-bench`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arch;
pub mod count;
pub mod pack;

pub use pack::{transpose, F32x8, F64x4, I32x8, I64x4, Mask, Pack, Scalar};
