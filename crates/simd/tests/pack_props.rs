//! Property-based tests for the portable pack model.
//!
//! Every lane operation is checked against an independent index-arithmetic
//! model on plain arrays, for both `f64x4` and `i32x8` shapes, so the rest
//! of the workspace can treat `Pack` semantics as ground truth.

use proptest::prelude::*;
use tempora_simd::{transpose, Mask, Pack};

const N4: usize = 4;
const N8: usize = 8;

proptest! {
    #[test]
    fn rotate_up_model_f64(lanes in proptest::array::uniform4(-1e9f64..1e9)) {
        let p = Pack::<f64, N4>(lanes);
        let r = p.rotate_up();
        for j in 0..N4 {
            prop_assert_eq!(r[j], lanes[(j + N4 - 1) % N4]);
        }
    }

    #[test]
    fn rotate_round_trip_i32(lanes in proptest::array::uniform8(any::<i32>())) {
        let p = Pack::<i32, N8>(lanes);
        prop_assert_eq!(p.rotate_up().rotate_down(), p);
        // N rotations are the identity.
        let mut q = p;
        for _ in 0..N8 { q = q.rotate_up(); }
        prop_assert_eq!(q, p);
    }

    #[test]
    fn shift_up_insert_model(lanes in proptest::array::uniform4(any::<i64>()), e in any::<i64>()) {
        let p = Pack::<i64, N4>(lanes);
        let r = p.shift_up_insert(e);
        prop_assert_eq!(r[0], e);
        for j in 1..N4 {
            prop_assert_eq!(r[j], lanes[j - 1]);
        }
        // Equivalent to the paper's two-instruction rotate + blend.
        prop_assert_eq!(r, p.rotate_up().replace(0, e));
    }

    #[test]
    fn align_pair_model(
        a in proptest::array::uniform8(any::<i32>()),
        b in proptest::array::uniform8(any::<i32>()),
        shift in 0usize..=N8,
    ) {
        let pa = Pack::<i32, N8>(a);
        let pb = Pack::<i32, N8>(b);
        let r = Pack::align_pair(pa, pb, shift);
        let concat: Vec<i32> = a.iter().chain(b.iter()).copied().collect();
        for j in 0..N8 {
            prop_assert_eq!(r[j], concat[j + shift]);
        }
    }

    #[test]
    fn gather_scatter_roundtrip(
        vals in proptest::collection::vec(-1e6f64..1e6, 64),
        base in 0usize..8,
        stride in 1isize..7,
    ) {
        let v = Pack::<f64, N4>::gather(&vals, base, stride);
        let mut out = vec![0.0; 64];
        v.scatter(&mut out, base, stride);
        for i in 0..N4 {
            let idx = (base as isize + i as isize * stride) as usize;
            prop_assert_eq!(out[idx], vals[idx]);
        }
    }

    #[test]
    fn gather_negative_stride_model(
        vals in proptest::collection::vec(any::<i32>(), 128),
        x in 0usize..16,
        s in 1isize..8,
    ) {
        // The temporal input-vector gather: base = x + (N-1)*s, stride = -s.
        let base = x + (N8 - 1) * s as usize;
        let v = Pack::<i32, N8>::gather(&vals, base, -s);
        for i in 0..N8 {
            prop_assert_eq!(v[i], vals[x + (N8 - 1 - i) * s as usize]);
        }
    }

    #[test]
    fn select_is_lane_wise_if(
        a in proptest::array::uniform8(any::<i32>()),
        b in proptest::array::uniform8(any::<i32>()),
        bits in proptest::array::uniform8(any::<bool>()),
    ) {
        let m = Mask::<N8>(bits);
        let r = Pack::select(m, Pack(a), Pack(b));
        for i in 0..N8 {
            prop_assert_eq!(r[i], if bits[i] { a[i] } else { b[i] });
        }
    }

    #[test]
    fn min_max_select_consistency(
        a in proptest::array::uniform4(-1e12f64..1e12),
        b in proptest::array::uniform4(-1e12f64..1e12),
    ) {
        let pa = Pack::<f64, N4>(a);
        let pb = Pack::<f64, N4>(b);
        let lt = pa.lt_mask(pb);
        prop_assert_eq!(pa.min(pb), Pack::select(lt, pa, pb));
        prop_assert_eq!(pa.max(pb), Pack::select(lt, pb, pa));
    }

    #[test]
    fn transpose_is_an_involution(vals in proptest::collection::vec(any::<i32>(), 64)) {
        let mut rows: [Pack<i32, N8>; N8] =
            core::array::from_fn(|i| Pack::from_fn(|j| vals[i * N8 + j]));
        let orig = rows;
        transpose(&mut rows);
        for i in 0..N8 {
            for j in 0..N8 {
                prop_assert_eq!(rows[i][j], orig[j][i]);
            }
        }
        transpose(&mut rows);
        prop_assert_eq!(rows, orig);
    }

    #[test]
    fn arithmetic_matches_scalar_model(
        a in proptest::array::uniform4(-1e6f64..1e6),
        b in proptest::array::uniform4(-1e6f64..1e6),
        c in proptest::array::uniform4(-1e6f64..1e6),
    ) {
        let (pa, pb, pc) = (Pack::<f64, N4>(a), Pack::<f64, N4>(b), Pack::<f64, N4>(c));
        let r = pa.mul_add(pb, pc);
        for i in 0..N4 {
            prop_assert_eq!(r[i], a[i].mul_add(b[i], c[i]));
        }
        let s = (pa + pb) * pc - pa;
        for i in 0..N4 {
            prop_assert_eq!(s[i], (a[i] + b[i]) * c[i] - a[i]);
        }
    }
}
