//! Deterministic fault injection for the tempora workspace.
//!
//! A *failpoint* is a named site in library code where a test (or an
//! operator reproducing a field failure) can ask the process to panic on a
//! precisely chosen hit. Sites are declared with the [`failpoint!`] macro:
//!
//! ```
//! tempora_failpoint::failpoint!("arena_alloc");
//! # let (band, block) = (0usize, 0usize);
//! tempora_failpoint::failpoint!("wave_task", band, block);
//! ```
//!
//! Unless this crate is compiled with the `failpoints` feature, every site
//! folds to nothing: [`enabled`] is a `const fn` returning `false`, so the
//! `if` guarding the registry call is dead code and the optimizer removes
//! it. Consumer crates therefore depend on `tempora_failpoint`
//! unconditionally and never need a feature of their own — turning on the
//! workspace-level `failpoints` feature arms every site at once through
//! cargo feature unification.
//!
//! # Activation
//!
//! Two equivalent routes:
//!
//! - **Environment** — `TEMPORA_FAILPOINT=site=panic@k` (read once, at the
//!   first armed-site check). `@k` selects the k-th hit (1-based) and
//!   defaults to `@1`; multiple directives are separated by `;`. Sites
//!   declared with extra `usize` arguments can be targeted per instance by
//!   suffixing the values with `:`, e.g. `wave_task:1:2=panic@1` fires on
//!   the first execution of band 1, block 2 — deterministic at any thread
//!   count because the key names the task, not the worker.
//! - **Programmatic** — [`arm`] with the same directive syntax, plus
//!   [`clear`] to disarm everything. This is what the in-process test
//!   suite uses.
//!
//! Each directive fires at most once; [`clear`]ing and re-[`arm`]ing resets
//! the hit counters. The only supported action is `panic` — the point of
//! the crate is to exercise the containment and recovery paths in
//! `tempora_parallel` and `tempora_plan`.

/// True when this build carries live failpoints.
///
/// This is a `const fn` evaluated against *this crate's* features, so the
/// [`failpoint!`] macro expansion in a consumer crate still observes the
/// unified workspace decision rather than the consumer's own feature set.
#[inline(always)]
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "failpoints")
}

/// Declare a failpoint site.
///
/// The first argument is the site name; optional further `usize` arguments
/// form an *instance key* (`site:a:b`) that directives can target
/// individually. With the `failpoints` feature off the expansion is an
/// `if false` branch that the optimizer deletes.
#[macro_export]
macro_rules! failpoint {
    ($site:expr $(, $arg:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::fire($site, &[$(($arg) as usize),*]);
        }
    };
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    /// Stub hit notification; never called because [`crate::enabled`] is
    /// `false`, but it must exist for the macro expansion to type-check.
    #[inline(always)]
    pub fn fire(_site: &str, _instance: &[usize]) {}

    /// Stub: arming without the `failpoints` feature is a programming
    /// error in a test harness, so fail loudly instead of silently doing
    /// nothing.
    pub fn arm(_directives: &str) {
        panic!("tempora_failpoint::arm called without the `failpoints` feature");
    }

    /// Stub disarm; a no-op so tests can call it unconditionally.
    pub fn clear() {}

    /// Stub hit counter; always zero without the `failpoints` feature.
    #[must_use]
    pub fn hits(_key: &str) -> usize {
        0
    }

    /// Stub env reload; a no-op without the `failpoints` feature.
    pub fn reload_from_env() {}
}

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// One armed directive: panic on the `at`-th hit of its key.
    struct Arm {
        /// 1-based hit number to panic on.
        at: usize,
        /// Hits observed so far for this key.
        hits: usize,
        /// Whether the panic already fired (each directive is single-shot).
        fired: bool,
    }

    /// Armed directives keyed by site or instance key (`site` or
    /// `site:a:b`).
    type Registry = HashMap<String, Arm>;

    /// Fast path: `true` iff at least one directive is armed. Sites check
    /// this single atomic before touching the registry mutex, so an
    /// unarmed `failpoints` build stays cheap inside hot loops.
    static ANY_ARMED: AtomicBool = AtomicBool::new(false);

    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

    /// The global registry, seeded from `TEMPORA_FAILPOINT` on first use.
    fn registry() -> &'static Mutex<Registry> {
        REGISTRY.get_or_init(|| {
            let mut reg = Registry::new();
            if let Ok(spec) = std::env::var("TEMPORA_FAILPOINT") {
                arm_into(&mut reg, &spec);
            }
            Mutex::new(reg)
        })
    }

    /// Lock the registry, recovering from poisoning: a failpoint's whole
    /// job is to panic near this mutex, and the registry (plain counters)
    /// stays consistent because panics are only thrown *after* the guard
    /// is dropped.
    fn lock() -> std::sync::MutexGuard<'static, Registry> {
        registry().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Parse `directives` (see crate docs for the syntax) into `reg`.
    ///
    /// Panics on malformed input: a mistyped injection spec that silently
    /// arms nothing would make a fault-injection test vacuously pass.
    fn arm_into(reg: &mut Registry, directives: &str) {
        for directive in directives.split(';') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            let (key, action) = directive.split_once('=').unwrap_or_else(|| {
                panic!("malformed failpoint directive `{directive}`: expected `site=panic[@k]`")
            });
            let (action, at) = match action.split_once('@') {
                Some((action, k)) => {
                    let at: usize = k.parse().unwrap_or_else(|_| {
                        panic!("malformed failpoint directive `{directive}`: `@{k}` is not a hit number")
                    });
                    (action, at)
                }
                None => (action, 1),
            };
            if action != "panic" {
                panic!(
                    "malformed failpoint directive `{directive}`: unsupported action `{action}`"
                );
            }
            if at == 0 {
                panic!("malformed failpoint directive `{directive}`: hit numbers are 1-based");
            }
            reg.insert(
                key.to_owned(),
                Arm {
                    at,
                    hits: 0,
                    fired: false,
                },
            );
        }
        // Ordering: Release pairs with the Acquire in `fire` so a site
        // that observes the flag also observes the mutex-protected arms
        // inserted before it was raised (the mutex alone already orders
        // the map itself; the flag is the cheap gate in front of it).
        ANY_ARMED.store(!reg.is_empty(), Ordering::Release);
    }

    /// Hit notification from a [`crate::failpoint!`] site.
    ///
    /// Looks up both the bare site key and, when `instance` is non-empty,
    /// the instance key `site:a:b`; each matching directive counts the hit
    /// and panics (once, outside the registry lock) when its `@k` target
    /// is reached.
    pub fn fire(site: &str, instance: &[usize]) {
        // Ordering: Acquire pairs with the Release in `arm_into`; see the
        // comment there. An unarmed registry makes this a single load.
        if !ANY_ARMED.load(Ordering::Acquire) {
            // Still force env seeding on the very first call so that a
            // spec set before process start arms without an explicit
            // `reload_from_env`.
            if REGISTRY.get().is_none() {
                drop(lock());
                // Ordering: Acquire — re-check after env seeding; pairs
                // with the Release store in `arm_into`.
                if !ANY_ARMED.load(Ordering::Acquire) {
                    return;
                }
            } else {
                return;
            }
        }
        let mut trip: Option<String> = None;
        {
            let mut reg = lock();
            let mut visit = |key: &str| {
                if let Some(arm) = reg.get_mut(key) {
                    arm.hits += 1;
                    if !arm.fired && arm.hits == arm.at {
                        arm.fired = true;
                        trip = Some(format!(
                            "failpoint `{key}` injected panic on hit {}",
                            arm.at
                        ));
                    }
                }
            };
            visit(site);
            if !instance.is_empty() {
                let mut key = String::from(site);
                for v in instance {
                    key.push(':');
                    key.push_str(&v.to_string());
                }
                visit(&key);
            }
        }
        if let Some(msg) = trip {
            panic!("{msg}");
        }
    }

    /// Arm one or more directives (same syntax as `TEMPORA_FAILPOINT`).
    ///
    /// Panics on malformed input. Existing directives for other keys stay
    /// armed; re-arming a key resets its hit counter.
    pub fn arm(directives: &str) {
        let mut reg = lock();
        arm_into(&mut reg, directives);
    }

    /// Disarm every directive and reset all hit counters.
    pub fn clear() {
        let mut reg = lock();
        reg.clear();
        // Ordering: Release for symmetry with `arm_into`; the flag is a
        // gate, correctness of the map is carried by the mutex.
        ANY_ARMED.store(false, Ordering::Release);
    }

    /// Hits observed for an exact key (bare site or instance key) since it
    /// was last armed. Zero for unknown keys.
    #[must_use]
    pub fn hits(key: &str) -> usize {
        lock().get(key).map_or(0, |arm| arm.hits)
    }

    /// Re-read `TEMPORA_FAILPOINT` and arm its directives on top of the
    /// current registry. Tests that set the variable after process start
    /// call this to pick it up.
    pub fn reload_from_env() {
        if let Ok(spec) = std::env::var("TEMPORA_FAILPOINT") {
            arm(&spec);
        }
    }
}

pub use imp::{arm, clear, fire, hits, reload_from_env};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// Serializes tests: the registry is process-global.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let lock = LOCK.get_or_init(|| Mutex::new(()));
        lock.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fires(site: &str, instance: &[usize]) -> bool {
        catch_unwind(AssertUnwindSafe(|| super::fire(site, instance))).is_err()
    }

    #[test]
    fn bare_site_fires_on_kth_hit() {
        let _g = guard();
        super::clear();
        super::arm("alpha=panic@3");
        assert!(!fires("alpha", &[]));
        assert!(!fires("alpha", &[]));
        assert!(fires("alpha", &[]));
        // Single-shot: the directive does not re-fire on later hits.
        assert!(!fires("alpha", &[]));
        assert_eq!(super::hits("alpha"), 4);
        super::clear();
    }

    #[test]
    fn instance_key_targets_one_task() {
        let _g = guard();
        super::clear();
        super::arm("wave:1:2=panic");
        assert!(!fires("wave", &[0, 2]));
        assert!(!fires("wave", &[1, 1]));
        assert!(fires("wave", &[1, 2]));
        super::clear();
    }

    #[test]
    fn unarmed_sites_are_silent() {
        let _g = guard();
        super::clear();
        assert!(!fires("anything", &[7]));
        super::clear();
    }

    #[test]
    fn multiple_directives_and_rearm_reset() {
        let _g = guard();
        super::clear();
        super::arm("a=panic@2; b=panic@1");
        assert!(fires("b", &[]));
        assert!(!fires("a", &[]));
        // Re-arming `a` resets its counter, so two more hits are needed.
        super::arm("a=panic@2");
        assert!(!fires("a", &[]));
        assert!(fires("a", &[]));
        super::clear();
    }

    #[test]
    fn malformed_directives_are_rejected() {
        let _g = guard();
        super::clear();
        for bad in ["nosign", "x=explode", "x=panic@zero", "x=panic@0"] {
            assert!(
                catch_unwind(AssertUnwindSafe(|| super::arm(bad))).is_err(),
                "directive `{bad}` should be rejected"
            );
        }
        super::clear();
    }
}
