//! Deterministic fault injection for the tempora workspace.
//!
//! A *failpoint* is a named site in library code where a test (or an
//! operator reproducing a field failure) can ask the process to panic on a
//! precisely chosen hit. Sites are declared with the [`failpoint!`] macro:
//!
//! ```
//! tempora_failpoint::failpoint!("arena_alloc");
//! # let (band, block) = (0usize, 0usize);
//! tempora_failpoint::failpoint!("wave_task", band, block);
//! ```
//!
//! Unless this crate is compiled with the `failpoints` feature, every site
//! folds to nothing: [`enabled`] is a `const fn` returning `false`, so the
//! `if` guarding the registry call is dead code and the optimizer removes
//! it. Consumer crates therefore depend on `tempora_failpoint`
//! unconditionally and never need a feature of their own — turning on the
//! workspace-level `failpoints` feature arms every site at once through
//! cargo feature unification.
//!
//! # Activation
//!
//! Two equivalent routes:
//!
//! - **Environment** — `TEMPORA_FAILPOINT=site=panic@k` (read once, at the
//!   first armed-site check). `@k` selects the k-th hit (1-based) and
//!   defaults to `@1`; multiple directives are separated by `;`. Sites
//!   declared with extra `usize` arguments can be targeted per instance by
//!   suffixing the values with `:`, e.g. `wave_task:1:2=panic@1` fires on
//!   the first execution of band 1, block 2 — deterministic at any thread
//!   count because the key names the task, not the worker.
//! - **Programmatic** — [`arm`] with the same directive syntax, plus
//!   [`clear`] to disarm everything. This is what the in-process test
//!   suite uses.
//!
//! Each directive fires at most once; [`clear`]ing and re-[`arm`]ing resets
//! the hit counters. Three actions are supported:
//!
//! - `panic` — throw a panic at the site, exercising the containment and
//!   recovery paths in `tempora_parallel`, `tempora_plan` and
//!   `tempora_server` (a panic in a connection thread *is* a dropped
//!   connection);
//! - `sleep:MS` — block the hitting thread for `MS` milliseconds,
//!   modelling a stalled peer or a slow I/O path without killing it;
//! - `exit:CODE` — terminate the whole process with `CODE` immediately
//!   (no unwinding, no drain), modelling a server crash mid-scenario for
//!   the network-chaos harness.

/// True when this build carries live failpoints.
///
/// This is a `const fn` evaluated against *this crate's* features, so the
/// [`failpoint!`] macro expansion in a consumer crate still observes the
/// unified workspace decision rather than the consumer's own feature set.
#[inline(always)]
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "failpoints")
}

/// Declare a failpoint site.
///
/// The first argument is the site name; optional further `usize` arguments
/// form an *instance key* (`site:a:b`) that directives can target
/// individually. With the `failpoints` feature off the expansion is an
/// `if false` branch that the optimizer deletes.
#[macro_export]
macro_rules! failpoint {
    ($site:expr $(, $arg:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::fire($site, &[$(($arg) as usize),*]);
        }
    };
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    /// Stub hit notification; never called because [`crate::enabled`] is
    /// `false`, but it must exist for the macro expansion to type-check.
    #[inline(always)]
    pub fn fire(_site: &str, _instance: &[usize]) {}

    /// Stub: arming without the `failpoints` feature is a programming
    /// error in a test harness, so fail loudly instead of silently doing
    /// nothing.
    pub fn arm(_directives: &str) {
        panic!("tempora_failpoint::arm called without the `failpoints` feature");
    }

    /// Stub disarm; a no-op so tests can call it unconditionally.
    pub fn clear() {}

    /// Stub hit counter; always zero without the `failpoints` feature.
    #[must_use]
    pub fn hits(_key: &str) -> usize {
        0
    }

    /// Stub env reload; a no-op without the `failpoints` feature.
    pub fn reload_from_env() {}
}

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// What a directive does when its hit number is reached.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Action {
        /// Throw a panic at the site.
        Panic,
        /// Block the hitting thread for this many milliseconds.
        Sleep(u64),
        /// Terminate the process with this exit code (no unwinding).
        Exit(i32),
    }

    /// One armed directive: act on the `at`-th hit of its key.
    struct Arm {
        /// 1-based hit number to act on.
        at: usize,
        /// What to do when the hit is reached.
        action: Action,
        /// Hits observed so far for this key.
        hits: usize,
        /// Whether the action already fired (each directive is single-shot).
        fired: bool,
    }

    /// Armed directives keyed by site or instance key (`site` or
    /// `site:a:b`).
    type Registry = HashMap<String, Arm>;

    /// Fast path: `true` iff at least one directive is armed. Sites check
    /// this single atomic before touching the registry mutex, so an
    /// unarmed `failpoints` build stays cheap inside hot loops.
    static ANY_ARMED: AtomicBool = AtomicBool::new(false);

    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

    /// The global registry, seeded from `TEMPORA_FAILPOINT` on first use.
    fn registry() -> &'static Mutex<Registry> {
        REGISTRY.get_or_init(|| {
            let mut reg = Registry::new();
            if let Ok(spec) = std::env::var("TEMPORA_FAILPOINT") {
                arm_into(&mut reg, &spec);
            }
            Mutex::new(reg)
        })
    }

    /// Lock the registry, recovering from poisoning: a failpoint's whole
    /// job is to panic near this mutex, and the registry (plain counters)
    /// stays consistent because panics are only thrown *after* the guard
    /// is dropped.
    fn lock() -> std::sync::MutexGuard<'static, Registry> {
        registry().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Parse `directives` (see crate docs for the syntax) into `reg`.
    ///
    /// Panics on malformed input: a mistyped injection spec that silently
    /// arms nothing would make a fault-injection test vacuously pass.
    fn arm_into(reg: &mut Registry, directives: &str) {
        for directive in directives.split(';') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            let (key, action) = directive.split_once('=').unwrap_or_else(|| {
                panic!("malformed failpoint directive `{directive}`: expected `site=action[@k]`")
            });
            let (action, at) = match action.split_once('@') {
                Some((action, k)) => {
                    let at: usize = k.parse().unwrap_or_else(|_| {
                        panic!("malformed failpoint directive `{directive}`: `@{k}` is not a hit number")
                    });
                    (action, at)
                }
                None => (action, 1),
            };
            let action = match action.split_once(':') {
                None if action == "panic" => Action::Panic,
                Some(("sleep", ms)) => Action::Sleep(ms.parse().unwrap_or_else(|_| {
                    panic!(
                        "malformed failpoint directive `{directive}`: `sleep:{ms}` wants milliseconds"
                    )
                })),
                Some(("exit", code)) => Action::Exit(code.parse().unwrap_or_else(|_| {
                    panic!(
                        "malformed failpoint directive `{directive}`: `exit:{code}` wants an exit code"
                    )
                })),
                _ => panic!(
                    "malformed failpoint directive `{directive}`: unsupported action `{action}` \
                     (expected `panic`, `sleep:MS` or `exit:CODE`)"
                ),
            };
            if at == 0 {
                panic!("malformed failpoint directive `{directive}`: hit numbers are 1-based");
            }
            reg.insert(
                key.to_owned(),
                Arm {
                    at,
                    action,
                    hits: 0,
                    fired: false,
                },
            );
        }
        // Ordering: Release pairs with the Acquire in `fire` so a site
        // that observes the flag also observes the mutex-protected arms
        // inserted before it was raised (the mutex alone already orders
        // the map itself; the flag is the cheap gate in front of it).
        ANY_ARMED.store(!reg.is_empty(), Ordering::Release);
    }

    /// Hit notification from a [`crate::failpoint!`] site.
    ///
    /// Looks up both the bare site key and, when `instance` is non-empty,
    /// the instance key `site:a:b`; each matching directive counts the hit
    /// and panics (once, outside the registry lock) when its `@k` target
    /// is reached.
    pub fn fire(site: &str, instance: &[usize]) {
        // Ordering: Acquire pairs with the Release in `arm_into`; see the
        // comment there. An unarmed registry makes this a single load.
        if !ANY_ARMED.load(Ordering::Acquire) {
            // Still force env seeding on the very first call so that a
            // spec set before process start arms without an explicit
            // `reload_from_env`.
            if REGISTRY.get().is_none() {
                drop(lock());
                // Ordering: Acquire — re-check after env seeding; pairs
                // with the Release store in `arm_into`.
                if !ANY_ARMED.load(Ordering::Acquire) {
                    return;
                }
            } else {
                return;
            }
        }
        let mut trip: Option<(Action, String)> = None;
        {
            let mut reg = lock();
            let mut visit = |key: &str| {
                if let Some(arm) = reg.get_mut(key) {
                    arm.hits += 1;
                    if !arm.fired && arm.hits == arm.at {
                        arm.fired = true;
                        let what = match arm.action {
                            Action::Panic => "panic".to_owned(),
                            Action::Sleep(ms) => format!("{ms}ms sleep"),
                            Action::Exit(code) => format!("exit({code})"),
                        };
                        trip = Some((
                            arm.action,
                            format!("failpoint `{key}` injected {what} on hit {}", arm.at),
                        ));
                    }
                }
            };
            visit(site);
            if !instance.is_empty() {
                let mut key = String::from(site);
                for v in instance {
                    key.push(':');
                    key.push_str(&v.to_string());
                }
                visit(&key);
            }
        }
        // Act outside the registry lock so a panic (or a long sleep) never
        // wedges other sites' bookkeeping.
        match trip {
            Some((Action::Panic, msg)) => panic!("{msg}"),
            Some((Action::Sleep(ms), _)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms))
            }
            Some((Action::Exit(code), msg)) => {
                eprintln!("tempora_failpoint: {msg} — exiting");
                std::process::exit(code)
            }
            None => {}
        }
    }

    /// Arm one or more directives (same syntax as `TEMPORA_FAILPOINT`).
    ///
    /// Panics on malformed input. Existing directives for other keys stay
    /// armed; re-arming a key resets its hit counter.
    pub fn arm(directives: &str) {
        let mut reg = lock();
        arm_into(&mut reg, directives);
    }

    /// Disarm every directive and reset all hit counters.
    pub fn clear() {
        let mut reg = lock();
        reg.clear();
        // Ordering: Release for symmetry with `arm_into`; the flag is a
        // gate, correctness of the map is carried by the mutex.
        ANY_ARMED.store(false, Ordering::Release);
    }

    /// Hits observed for an exact key (bare site or instance key) since it
    /// was last armed. Zero for unknown keys.
    #[must_use]
    pub fn hits(key: &str) -> usize {
        lock().get(key).map_or(0, |arm| arm.hits)
    }

    /// Re-read `TEMPORA_FAILPOINT` and arm its directives on top of the
    /// current registry. Tests that set the variable after process start
    /// call this to pick it up.
    pub fn reload_from_env() {
        if let Ok(spec) = std::env::var("TEMPORA_FAILPOINT") {
            arm(&spec);
        }
    }
}

pub use imp::{arm, clear, fire, hits, reload_from_env};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// Serializes tests: the registry is process-global.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let lock = LOCK.get_or_init(|| Mutex::new(()));
        lock.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fires(site: &str, instance: &[usize]) -> bool {
        catch_unwind(AssertUnwindSafe(|| super::fire(site, instance))).is_err()
    }

    #[test]
    fn bare_site_fires_on_kth_hit() {
        let _g = guard();
        super::clear();
        super::arm("alpha=panic@3");
        assert!(!fires("alpha", &[]));
        assert!(!fires("alpha", &[]));
        assert!(fires("alpha", &[]));
        // Single-shot: the directive does not re-fire on later hits.
        assert!(!fires("alpha", &[]));
        assert_eq!(super::hits("alpha"), 4);
        super::clear();
    }

    #[test]
    fn instance_key_targets_one_task() {
        let _g = guard();
        super::clear();
        super::arm("wave:1:2=panic");
        assert!(!fires("wave", &[0, 2]));
        assert!(!fires("wave", &[1, 1]));
        assert!(fires("wave", &[1, 2]));
        super::clear();
    }

    #[test]
    fn unarmed_sites_are_silent() {
        let _g = guard();
        super::clear();
        assert!(!fires("anything", &[7]));
        super::clear();
    }

    #[test]
    fn multiple_directives_and_rearm_reset() {
        let _g = guard();
        super::clear();
        super::arm("a=panic@2; b=panic@1");
        assert!(fires("b", &[]));
        assert!(!fires("a", &[]));
        // Re-arming `a` resets its counter, so two more hits are needed.
        super::arm("a=panic@2");
        assert!(!fires("a", &[]));
        assert!(fires("a", &[]));
        super::clear();
    }

    #[test]
    fn sleep_action_stalls_without_panicking() {
        let _g = guard();
        super::clear();
        super::arm("stall=sleep:50@2");
        let t0 = std::time::Instant::now();
        assert!(!fires("stall", &[]));
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(40),
            "hit 1 must not sleep"
        );
        let t1 = std::time::Instant::now();
        assert!(!fires("stall", &[]));
        assert!(
            t1.elapsed() >= std::time::Duration::from_millis(50),
            "hit 2 sleeps 50ms"
        );
        // Single-shot: the third hit does not sleep again.
        let t2 = std::time::Instant::now();
        assert!(!fires("stall", &[]));
        assert!(t2.elapsed() < std::time::Duration::from_millis(40));
        super::clear();
    }

    #[test]
    fn malformed_directives_are_rejected() {
        let _g = guard();
        super::clear();
        for bad in [
            "nosign",
            "x=explode",
            "x=panic@zero",
            "x=panic@0",
            "x=sleep",
            "x=sleep:soon",
            "x=exit:never",
        ] {
            assert!(
                catch_unwind(AssertUnwindSafe(|| super::arm(bad))).is_err(),
                "directive `{bad}` should be rejected"
            );
        }
        super::clear();
    }
}
