//! Conway's Game of Life on the integer temporal engine (8 lanes).
//!
//! The paper evaluates the Pluto B2S23 variant; this example runs classic
//! Conway B3S23 so the famous patterns behave as expected, using the same
//! `i32×8` temporal engine — one tile advances **eight generations per
//! sweep** of the board.
//!
//! Run with: `cargo run --release --example game_of_life`

use tempora::core::kernels::LifeKern2d;
use tempora::core::t2d;
use tempora::grid::Grid2;
use tempora::prelude::*;

fn render(g: &Grid2<i32>, rows: usize, cols: usize) {
    for x in 1..=rows {
        let line: String = (1..=cols)
            .map(|y| if g.get(x, y) == 1 { '█' } else { '·' })
            .collect();
        println!("{line}");
    }
}

fn main() {
    let (nx, ny) = (32usize, 64usize);
    let rule = LifeRule::conway();
    let kern = LifeKern2d(rule);

    let mut board = Grid2::<i32>::new(nx, ny, 1, Boundary::Dirichlet(0));
    // A glider heading south-east…
    for &(x, y) in &[(2, 3), (3, 4), (4, 2), (4, 3), (4, 4)] {
        board.set(x, y, 1);
    }
    // …a blinker…
    for d in 0..3 {
        board.set(10 + d, 40, 1);
    }
    // …and a block (still life).
    for &(x, y) in &[(20, 20), (20, 21), (21, 20), (21, 21)] {
        board.set(x, y, 1);
    }

    println!("generation 0:");
    render(&board, nx, ny);

    for gen in [8usize, 16, 24] {
        // Each call advances 8 generations: exactly one temporal tile of
        // the vl = 8 integer engine.
        board = t2d::run::<i32, 8, _>(&board, &kern, 8, 2);
        println!("\ngeneration {gen}:");
        render(&board, nx, ny);
    }

    // The glider must have translated (+6, +6) after 24 generations and
    // the block must be unchanged — verified against the scalar oracle.
    let mut check = Grid2::<i32>::new(nx, ny, 1, Boundary::Dirichlet(0));
    for &(x, y) in &[(2, 3), (3, 4), (4, 2), (4, 3), (4, 4)] {
        check.set(x, y, 1);
    }
    for d in 0..3 {
        check.set(10 + d, 40, 1);
    }
    for &(x, y) in &[(20, 20), (20, 21), (21, 20), (21, 21)] {
        check.set(x, y, 1);
    }
    let gold = reference::life(&check, rule, 24);
    assert!(board.interior_eq(&gold));
    assert_eq!(board.get(20, 20), 1, "block is a still life");
    println!("\nverification vs scalar reference: exact ✓");
}
