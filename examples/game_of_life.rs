//! Conway's Game of Life on the integer temporal engine (8 lanes),
//! driven through the solver API.
//!
//! The paper evaluates the Pluto B2S23 variant; this example runs classic
//! Conway B3S23 so the famous patterns behave as expected, using the same
//! `i32×8` temporal engine — one plan run advances **eight generations
//! per sweep** of the board (one temporal tile), and the compiled plan is
//! reused for every batch of generations.
//!
//! Run with: `cargo run --release --example game_of_life`

use tempora::grid::Grid2;
use tempora::prelude::*;

fn render(g: &Grid2<i32>, rows: usize, cols: usize) {
    for x in 1..=rows {
        let line: String = (1..=cols)
            .map(|y| if g.get(x, y) == 1 { '█' } else { '·' })
            .collect();
        println!("{line}");
    }
}

fn seed(board: &mut Grid2<i32>) {
    // A glider heading south-east…
    for &(x, y) in &[(2, 3), (3, 4), (4, 2), (4, 3), (4, 4)] {
        board.set(x, y, 1);
    }
    // …a blinker…
    for d in 0..3 {
        board.set(10 + d, 40, 1);
    }
    // …and a block (still life).
    for &(x, y) in &[(20, 20), (20, 21), (21, 20), (21, 21)] {
        board.set(x, y, 1);
    }
}

fn main() {
    let (nx, ny) = (32usize, 64usize);
    let rule = LifeRule::conway();

    // One plan run = 8 generations: exactly one temporal tile of the
    // vl = 8 integer engine.
    let problem = Problem::life(nx, ny, 8, rule);
    let mut plan = PlanBuilder::new()
        .stride(2)
        .build(&problem)
        .expect("valid configuration");

    let mut state = problem.state();
    seed(state.grid2i_mut().unwrap());

    println!("generation 0:");
    render(state.grid2i().unwrap(), nx, ny);

    for gen in [8usize, 16, 24] {
        plan.run(&mut state).expect("state matches plan");
        println!("\ngeneration {gen}:");
        render(state.grid2i().unwrap(), nx, ny);
    }

    // The glider must have translated (+6, +6) after 24 generations and
    // the block must be unchanged — verified against the scalar oracle.
    let mut check = Grid2::<i32>::new(nx, ny, 1, Boundary::Dirichlet(0));
    seed(&mut check);
    let gold = reference::life(&check, rule, 24);
    let board = state.grid2i().unwrap();
    assert!(board.interior_eq(&gold));
    assert_eq!(board.get(20, 20), 1, "block is a still life");
    println!("\nverification vs scalar reference: exact ✓");
}
