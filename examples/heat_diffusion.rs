//! 2-D heat diffusion through the solver API, rendered as ASCII.
//!
//! Demonstrates the outer-loop temporal vectorization of §3.2 ("High-
//! dimensional Stencils") on a physically motivated workload: a hot
//! plate cooling through fixed-temperature edges. The same compiled
//! `Plan` is re-executed for each animation frame — state evolves, setup
//! is paid once.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use std::time::Instant;

use tempora::prelude::*;

const RAMP: &[u8] = b" .:-=+*#%@";

fn render(g: &tempora::grid::Grid2<f64>, rows: usize, cols: usize) {
    let (nx, ny) = (g.nx(), g.ny());
    for r in 0..rows {
        let x = 1 + r * nx / rows;
        let mut line = String::new();
        for c in 0..cols {
            let y = 1 + c * ny / cols;
            let v = g.get(x, y).clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            line.push(RAMP[idx] as char);
        }
        println!("{line}");
    }
}

fn main() {
    let n = 512;
    let coeffs = Heat2dCoeffs::classic(0.125);
    // One frame = 200 time steps; the plan is compiled for that extent
    // and re-run per frame.
    let frame_steps = 200;
    let problem = Problem::heat2d(n, n, frame_steps, coeffs);
    let mut plan = PlanBuilder::new()
        .stride(2)
        .select(Select::from_env())
        .build(&problem)
        .expect("valid configuration");

    let mut state = problem.state();
    // Two hot blobs on a cold plate.
    state.grid2_mut().unwrap().fill_interior(|i, j| {
        let d1 = ((i as f64 - 128.0).powi(2) + (j as f64 - 128.0).powi(2)).sqrt();
        let d2 = ((i as f64 - 384.0).powi(2) + (j as f64 - 300.0).powi(2)).sqrt();
        if d1 < 60.0 || d2 < 40.0 {
            1.0
        } else {
            0.0
        }
    });

    println!("initial state:");
    render(state.grid2().unwrap(), 24, 64);

    for (label, frames) in [("after 200 steps", 1usize), ("after 1000 more", 5)] {
        let t0 = Instant::now();
        let mut engine = None;
        for _ in 0..frames {
            // Same plan, evolving state: amortized setup per frame.
            let report = plan.run(&mut state).expect("state matches plan");
            engine = report.engine;
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "\n{label} (temporal engine: {}, {:.2} Gstencils/s):",
            engine.map_or("-", |e| e.name()),
            (n * n * frames * frame_steps) as f64 / dt / 1e9
        );
        render(state.grid2().unwrap(), 24, 64);
    }

    // Verify against the scalar oracle for a short run.
    let probe_problem = Problem::heat2d(64, 64, 32, coeffs);
    let mut probe_plan = PlanBuilder::new()
        .stride(2)
        .build(&probe_problem)
        .expect("valid configuration");
    let mut probe = probe_problem.state();
    probe
        .grid2_mut()
        .unwrap()
        .fill_interior(|i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0);
    let init = probe.grid2().unwrap().clone();
    probe_plan.run(&mut probe).unwrap();
    let gold = reference::heat2d(&init, coeffs, 32);
    assert!(probe.grid2().unwrap().interior_eq(&gold));
    println!("\nverification vs scalar reference: bit-identical ✓");
}
