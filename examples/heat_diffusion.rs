//! 2-D heat diffusion with the temporal engine, rendered as ASCII.
//!
//! Demonstrates the outer-loop temporal vectorization of §3.2 ("High-
//! dimensional Stencils") on a physically motivated workload: a hot
//! plate cooling through fixed-temperature edges.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use std::time::Instant;

use tempora::core::kernels::JacobiKern2d;
use tempora::core::t2d;
use tempora::prelude::*;

const RAMP: &[u8] = b" .:-=+*#%@";

fn render(g: &tempora::grid::Grid2<f64>, rows: usize, cols: usize) {
    let (nx, ny) = (g.nx(), g.ny());
    for r in 0..rows {
        let x = 1 + r * nx / rows;
        let mut line = String::new();
        for c in 0..cols {
            let y = 1 + c * ny / cols;
            let v = g.get(x, y).clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            line.push(RAMP[idx] as char);
        }
        println!("{line}");
    }
}

fn main() {
    let n = 512;
    let coeffs = Heat2dCoeffs::classic(0.125);
    let kern = JacobiKern2d(coeffs);

    let mut grid = Grid2::new(n, n, 1, Boundary::Dirichlet(0.0));
    // Two hot blobs on a cold plate.
    grid.fill_interior(|i, j| {
        let d1 = ((i as f64 - 128.0).powi(2) + (j as f64 - 128.0).powi(2)).sqrt();
        let d2 = ((i as f64 - 384.0).powi(2) + (j as f64 - 300.0).powi(2)).sqrt();
        if d1 < 60.0 || d2 < 40.0 {
            1.0
        } else {
            0.0
        }
    });

    println!("initial state:");
    render(&grid, 24, 64);

    for (label, steps) in [("after 200 steps", 200usize), ("after 1000 more", 1000)] {
        let t0 = Instant::now();
        grid = t2d::run::<f64, 4, _>(&grid, &kern, steps, 2);
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "\n{label} (temporal engine, {:.2} Gstencils/s):",
            (n * n) as f64 * steps as f64 / dt / 1e9
        );
        render(&grid, 24, 64);
    }

    // Verify against the scalar oracle for a short run.
    let mut probe = Grid2::new(64, 64, 1, Boundary::Dirichlet(0.0));
    probe.fill_interior(|i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0);
    let a = t2d::run::<f64, 4, _>(&probe, &kern, 32, 2);
    let b = reference::heat2d(&probe, coeffs, 32);
    assert!(a.interior_eq(&b));
    println!("\nverification vs scalar reference: bit-identical ✓");
}
