//! Quickstart: temporal vectorization of a 1-D heat equation.
//!
//! Builds a grid, advances it with the paper's temporal scheme, verifies
//! the result bit-for-bit against the scalar reference, and reports the
//! speedup.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Instant;

use tempora::prelude::*;

fn main() {
    // Problem: 1 M points, 1024 time steps, Dirichlet boundaries.
    let n = 1 << 20;
    let steps = 1024;
    let coeffs = Heat1dCoeffs::classic(0.25);

    let mut grid = Grid1::new(n, 1, Boundary::Dirichlet(0.0));
    // A hot spot in the middle of a cold rod.
    grid.fill_interior(|i| {
        if (n / 2 - 50..n / 2 + 50).contains(&i) {
            1.0
        } else {
            0.0
        }
    });

    // The paper's temporal vectorization: vector length 4 (AVX doubles),
    // space stride s = 7 (8 in-flight input vectors, §3.3).
    let t0 = Instant::now();
    let ours = temporal1d_jacobi(&grid, coeffs, steps, 7);
    let t_our = t0.elapsed().as_secs_f64();

    // The naive scalar sweep (Algorithm 1 of the paper).
    let t0 = Instant::now();
    let gold = reference::heat1d(&grid, coeffs, steps);
    let t_ref = t0.elapsed().as_secs_f64();

    assert!(
        ours.interior_eq(&gold),
        "temporal result must be bit-identical to the reference"
    );

    let gsten = |t: f64| (n as f64 * steps as f64) / t / 1e9;
    println!("grid:              {n} points, {steps} steps");
    println!(
        "temporal (our):    {:.3}s  = {:.3} Gstencils/s",
        t_our,
        gsten(t_our)
    );
    println!(
        "scalar reference:  {:.3}s  = {:.3} Gstencils/s",
        t_ref,
        gsten(t_ref)
    );
    println!("speedup:           {:.2}x", t_ref / t_our);
    println!("results:           bit-identical ✓");

    // Peek at the diffused profile.
    let mid = n / 2;
    print!("profile around the hot spot: ");
    for x in (mid - 200..=mid + 200).step_by(50) {
        print!("{:.4} ", ours.get(1 + x));
    }
    println!();
}
