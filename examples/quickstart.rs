//! Quickstart: temporal vectorization of a 1-D heat equation through the
//! solver API.
//!
//! Describes the problem once, compiles a `Plan` once (geometry
//! validated, engine resolved, scratch allocated), runs it against a
//! state, verifies the result bit-for-bit against the scalar reference,
//! and reports the speedup — then shows the point of plans: re-running
//! the compiled plan on fresh states with amortized setup.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Instant;

use tempora::prelude::*;

fn main() {
    // Problem: 1 M points, 1024 time steps, Dirichlet boundaries.
    let n = 1 << 20;
    let steps = 1024;
    let coeffs = Heat1dCoeffs::classic(0.25);
    let problem = Problem::heat1d(n, steps, coeffs);

    let hot_spot = |i: usize| {
        if (n / 2 - 50..n / 2 + 50).contains(&i) {
            1.0
        } else {
            0.0
        }
    };

    // The paper's temporal vectorization: vector length 4 (AVX doubles),
    // space stride s = 7 (8 in-flight input vectors, §3.3). The plan
    // resolves the engine (portable vs AVX2, honouring TEMPORA_ENGINE)
    // and allocates every scratch buffer once, up front.
    let mut plan = PlanBuilder::new()
        .stride(7)
        .select(Select::from_env())
        .build(&problem)
        .expect("valid configuration");

    let mut state = problem.state();
    state.grid1_mut().unwrap().fill_interior(hot_spot);

    let t0 = Instant::now();
    let report = plan.run(&mut state).expect("state matches plan");
    let t_our = t0.elapsed().as_secs_f64();
    let ours = state.grid1().unwrap();

    // The naive scalar sweep (Algorithm 1 of the paper).
    let mut init = Grid1::new(n, 1, Boundary::Dirichlet(0.0));
    init.fill_interior(hot_spot);
    let t0 = Instant::now();
    let gold = reference::heat1d(&init, coeffs, steps);
    let t_ref = t0.elapsed().as_secs_f64();

    assert!(
        ours.interior_eq(&gold),
        "temporal result must be bit-identical to the reference"
    );

    let gsten = |t: f64| (n as f64 * steps as f64) / t / 1e9;
    println!("grid:              {n} points, {steps} steps");
    println!(
        "temporal (our):    {:.3}s  = {:.3} Gstencils/s  [engine: {}]",
        t_our,
        gsten(t_our),
        report.engine.map_or("-", |e| e.name()),
    );
    println!(
        "scalar reference:  {:.3}s  = {:.3} Gstencils/s",
        t_ref,
        gsten(t_ref)
    );
    println!("speedup:           {:.2}x", t_ref / t_our);
    println!("results:           bit-identical ✓");

    // Plan reuse: the same compiled plan serves fresh states with zero
    // further setup (no validation, no engine resolution, no allocation).
    let mut state2 = problem.state();
    state2.grid1_mut().unwrap().fill_interior(hot_spot);
    let t0 = Instant::now();
    plan.run(&mut state2).unwrap();
    let t_reuse = t0.elapsed().as_secs_f64();
    assert!(state2.grid1().unwrap().interior_eq(&gold));
    println!(
        "plan reuse:        {:.3}s  = {:.3} Gstencils/s (second state, amortized setup)",
        t_reuse,
        gsten(t_reuse)
    );

    // Peek at the diffused profile.
    let mid = n / 2;
    print!("profile around the hot spot: ");
    for x in (mid - 200..=mid + 200).step_by(50) {
        print!("{:.4} ", ours.get(1 + x));
    }
    println!();
}
