//! Longest common subsequence of two DNA-like sequences, computed with
//! the temporal DP engine (§3.4) and the parallel rectangle tiling —
//! all through the solver API.
//!
//! Run with: `cargo run --release --example dna_lcs`

use std::time::Instant;

use tempora::grid::random_sequence;
use tempora::prelude::*;

fn to_dna(seq: &[u8]) -> String {
    seq.iter()
        .map(|&c| b"ACGT"[c as usize % 4] as char)
        .collect()
}

/// Compile a plan for `(a, b)` with the given builder and run it once,
/// returning the LCS length and the wall time.
fn run_lcs(a: &[u8], b: &[u8], builder: PlanBuilder) -> (i32, f64) {
    let problem = Problem::lcs(a.len(), b.len());
    let mut plan = builder.build(&problem).expect("valid configuration");
    let mut state = problem.state();
    {
        let l = state.lcs_mut().unwrap();
        l.a = a.to_vec();
        l.b = b.to_vec();
    }
    let t0 = Instant::now();
    let report = plan.run(&mut state).expect("state matches plan");
    (report.lcs_length.unwrap(), t0.elapsed().as_secs_f64())
}

fn main() {
    // Small demo pair first: show the actual subsequence length.
    let a = b"GATTACAAGGTACCATGCA";
    let b = b"GTTAACAGGGTCCATGA";
    let (len, _) = run_lcs(a, b, PlanBuilder::new());
    println!(
        "LCS({}, {}) = {}",
        String::from_utf8_lossy(a),
        String::from_utf8_lossy(b),
        len
    );
    assert_eq!(len, reference::lcs_len(a, b));

    // Now a serious workload: two random 32k-base sequences.
    let n = 32_768;
    let sa = random_sequence(n, 4, 1);
    let sb = random_sequence(n, 4, 2);
    println!(
        "\nsequences: {}… vs {}…",
        &to_dna(&sa)[..48],
        &to_dna(&sb)[..48]
    );

    let t0 = Instant::now();
    let gold = reference::lcs_len(&sa, &sb);
    let t_scalar = t0.elapsed().as_secs_f64();

    // Sequential temporal DP (i32 × 8 lanes).
    let (fast, t_temporal) = run_lcs(&sa, &sb, PlanBuilder::new());
    assert_eq!(fast, gold);

    // Parallel rectangle tiling on all cores.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (par, t_par) = run_lcs(
        &sa,
        &sb,
        PlanBuilder::new()
            .tiling(Tiling::LcsRect {
                xblock: 2048,
                yblock: 2048,
            })
            .threads(threads),
    );
    assert_eq!(par, gold);

    let gcells = |t: f64| (n as f64) * (n as f64) / t / 1e9;
    println!(
        "LCS length = {gold} ({:.1}% of n)",
        100.0 * gold as f64 / n as f64
    );
    println!(
        "scalar DP:             {:.3}s = {:.2} Gcells/s",
        t_scalar,
        gcells(t_scalar)
    );
    println!(
        "temporal (i32 x 8):    {:.3}s = {:.2} Gcells/s",
        t_temporal,
        gcells(t_temporal)
    );
    println!(
        "temporal + tiles ({threads}T): {:.3}s = {:.2} Gcells/s",
        t_par,
        gcells(t_par)
    );
    println!(
        "speedup over scalar:   {:.2}x (sequential), {:.2}x (parallel)",
        t_scalar / t_temporal,
        t_scalar / t_par
    );
}
