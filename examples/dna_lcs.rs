//! Longest common subsequence of two DNA-like sequences, computed with
//! the temporal DP engine (§3.4) and the parallel rectangle tiling.
//!
//! Run with: `cargo run --release --example dna_lcs`

use std::time::Instant;

use tempora::core::lcs;
use tempora::grid::random_sequence;
use tempora::parallel::Pool;
use tempora::stencil::reference;
use tempora::tiling::lcs_rect;

fn to_dna(seq: &[u8]) -> String {
    seq.iter()
        .map(|&c| b"ACGT"[c as usize % 4] as char)
        .collect()
}

fn main() {
    // Small demo pair first: show the actual subsequence length.
    let a = b"GATTACAAGGTACCATGCA";
    let b = b"GTTAACAGGGTCCATGA";
    let len = lcs::length(a, b, 1);
    println!(
        "LCS({}, {}) = {}",
        String::from_utf8_lossy(a),
        String::from_utf8_lossy(b),
        len
    );
    assert_eq!(len, reference::lcs_len(a, b));

    // Now a serious workload: two random 32k-base sequences.
    let n = 32_768;
    let sa = random_sequence(n, 4, 1);
    let sb = random_sequence(n, 4, 2);
    println!(
        "\nsequences: {}… vs {}…",
        &to_dna(&sa)[..48],
        &to_dna(&sb)[..48]
    );

    let t0 = Instant::now();
    let gold = reference::lcs_len(&sa, &sb);
    let t_scalar = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let fast = lcs::length(&sa, &sb, 1);
    let t_temporal = t0.elapsed().as_secs_f64();
    assert_eq!(fast, gold);

    let pool = Pool::max();
    let t0 = Instant::now();
    let par = lcs_rect::run_lcs(&sa, &sb, 2048, 2048, 1, true, &pool);
    let t_par = t0.elapsed().as_secs_f64();
    assert_eq!(par, gold);

    let gcells = |t: f64| (n as f64) * (n as f64) / t / 1e9;
    println!(
        "LCS length = {gold} ({:.1}% of n)",
        100.0 * gold as f64 / n as f64
    );
    println!(
        "scalar DP:             {:.3}s = {:.2} Gcells/s",
        t_scalar,
        gcells(t_scalar)
    );
    println!(
        "temporal (i32 x 8):    {:.3}s = {:.2} Gcells/s",
        t_temporal,
        gcells(t_temporal)
    );
    println!(
        "temporal + tiles ({}T): {:.3}s = {:.2} Gcells/s",
        pool.threads(),
        t_par,
        gcells(t_par)
    );
    println!(
        "speedup over scalar:   {:.2}x (sequential), {:.2}x (parallel)",
        t_scalar / t_temporal,
        t_scalar / t_par
    );
}
